//
// Topology-aware shard partitioner: determinism, balance bound, cut quality
// against the strided baseline, and the metric bookkeeping the perf gate and
// SimResults proxy fields rely on. Pure graph-level tests — no simulation.
//
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "api/simulation.hpp"
#include "topology/partition.hpp"

namespace ibadapt {
namespace {

SimParams fatTree1024() {
  SimParams p;
  p.topoKind = TopologyKind::kFatTree;
  p.fatTreeArity = 2;
  p.fatTreeLevels = 8;  // 8 * 2^7 = 1024 switches
  p.nodesPerSwitch = 2;
  return p;
}

SimParams dragonfly1024() {
  SimParams p;
  p.topoKind = TopologyKind::kDragonfly;
  p.dragonflyRoutersPerGroup = 16;
  p.dragonflyGlobalPerRouter = 4;
  p.dragonflyGroups = 64;  // 16 * 64 = 1024 switches
  p.nodesPerSwitch = 2;
  return p;
}

SimParams irregular64() {
  SimParams p;
  p.topoKind = TopologyKind::kIrregular;
  p.numSwitches = 64;
  p.linksPerSwitch = 4;
  p.nodesPerSwitch = 4;
  return p;
}

// Odd arity on purpose: base-3 position digits are incommensurate with any
// power-of-two shard stride, so round-robin cuts a large fraction of the
// links — the regime the cut comparison is about. (Even-arity trees from
// this generator have per-level widths divisible by small strides, which
// makes `id % T` accidentally digit-aligned; see the dedicated test below.)
SimParams fatTree108() {
  SimParams p;
  p.topoKind = TopologyKind::kFatTree;
  p.fatTreeArity = 3;
  p.fatTreeLevels = 4;  // 4 * 27 = 108 switches
  p.nodesPerSwitch = 3;
  return p;
}

std::int64_t weightOf(const Topology& topo, SwitchId s) {
  return static_cast<std::int64_t>(topo.nodeCount(s)) +
         static_cast<std::int64_t>(topo.interSwitchDegree(s));
}

// The structural invariants every strategy must satisfy: a complete in-range
// assignment, no empty shard, and metrics that agree with a from-scratch
// recount of the assignment it returned.
void expectWellFormed(const Topology& topo, const PartitionResult& r,
                      int shards) {
  ASSERT_EQ(r.shardOf.size(), static_cast<std::size_t>(topo.numSwitches()));
  std::vector<int> pop(static_cast<std::size_t>(shards), 0);
  std::vector<std::int64_t> w(static_cast<std::size_t>(shards), 0);
  std::int64_t total = 0;
  for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
    const std::int32_t k = r.shardOf[static_cast<std::size_t>(s)];
    ASSERT_GE(k, 0);
    ASSERT_LT(k, shards);
    ++pop[static_cast<std::size_t>(k)];
    w[static_cast<std::size_t>(k)] += weightOf(topo, s);
    total += weightOf(topo, s);
  }
  for (int k = 0; k < shards; ++k) {
    EXPECT_GT(pop[static_cast<std::size_t>(k)], 0) << "empty shard " << k;
    EXPECT_EQ(w[static_cast<std::size_t>(k)],
              r.shardWeight[static_cast<std::size_t>(k)]);
  }
  EXPECT_EQ(r.totalWeight, total);
  EXPECT_EQ(r.maxWeight, *std::max_element(w.begin(), w.end()));
  EXPECT_LE(r.cutLinks, r.totalLinks);
  EXPECT_EQ(r.totalLinks, static_cast<std::uint64_t>(topo.numLinks()));
}

TEST(ShardPartition, RepeatedCallsReturnIdenticalAssignments) {
  for (const SimParams& p : {fatTree1024(), dragonfly1024(), irregular64()}) {
    const Topology topo = buildTopology(p);
    for (int shards : {2, 4, 8}) {
      const PartitionResult a =
          partitionSwitches(topo, shards, PartitionStrategy::kTopology);
      const PartitionResult b =
          partitionSwitches(topo, shards, PartitionStrategy::kTopology);
      EXPECT_EQ(a.shardOf, b.shardOf);
      EXPECT_EQ(a.cutLinks, b.cutLinks);
      EXPECT_EQ(a.maxWeight, b.maxWeight);
    }
  }
}

TEST(ShardPartition, TopologyStrategyRespectsBalanceBound) {
  const double epsilon = 0.10;
  for (const SimParams& p : {fatTree1024(), dragonfly1024(), irregular64()}) {
    const Topology topo = buildTopology(p);
    std::int64_t total = 0;
    std::int64_t maxSwitchW = 0;
    for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
      total += weightOf(topo, s);
      maxSwitchW = std::max(maxSwitchW, weightOf(topo, s));
    }
    for (int shards : {2, 3, 4, 8}) {
      const PartitionResult r = partitionSwitches(
          topo, shards, PartitionStrategy::kTopology, epsilon);
      expectWellFormed(topo, r, shards);
      const std::int64_t ideal = (total + shards - 1) / shards;
      const std::int64_t cap = std::max<std::int64_t>(
          static_cast<std::int64_t>(static_cast<double>(ideal) *
                                    (1.0 + epsilon)),
          maxSwitchW);
      EXPECT_LE(r.maxWeight, cap)
          << "shards=" << shards << " switches=" << topo.numSwitches();
      EXPECT_GE(r.imbalance, 1.0 - 1e-9);
    }
  }
}

TEST(ShardPartition, CutNeverWorseThanRoundRobinOnEveryFamily) {
  for (const SimParams& p : {fatTree108(), dragonfly1024(), irregular64()}) {
    const Topology topo = buildTopology(p);
    for (int shards : {2, 4, 8}) {
      const PartitionResult topoCut =
          partitionSwitches(topo, shards, PartitionStrategy::kTopology);
      const PartitionResult rr =
          partitionSwitches(topo, shards, PartitionStrategy::kRoundRobin);
      EXPECT_LE(topoCut.cutLinks, rr.cutLinks)
          << "switches=" << topo.numSwitches() << " shards=" << shards;
    }
  }
}

TEST(ShardPartition, HierarchicalFamiliesCutWellBelowRoundRobin) {
  // The CI proxy gate's margin, reproduced at the graph level: on
  // locality-structured families the partitioner must beat the strided
  // baseline by far more than the 30% the traffic gate demands.
  for (const SimParams& p : {fatTree108(), dragonfly1024()}) {
    const Topology topo = buildTopology(p);
    const PartitionResult t =
        partitionSwitches(topo, 4, PartitionStrategy::kTopology);
    const PartitionResult rr =
        partitionSwitches(topo, 4, PartitionStrategy::kRoundRobin);
    EXPECT_LE(10 * t.cutLinks, 7 * rr.cutLinks)
        << "switches=" << topo.numSwitches() << " cut=" << t.cutLinks
        << " rr=" << rr.cutLinks;
  }
}

TEST(ShardPartition, StrideAlignedFatTreeKeepsCutFractionSmall) {
  // Degenerate raw-cut case: on the arity-2 tree every per-level width is a
  // power of two, so `id % 4` tracks the two lowest position digits and
  // round-robin accidentally realizes a near-minimal geometric cut — but
  // every link it cuts is adjacent to the CA-bearing leaves, so it still
  // loses the (gated) mailbox-traffic comparison by a wide margin (see
  // ShardPartitionProxy.TopologyPartitionBeatsRoundRobinMailboxTraffic).
  // The partitioner's job here is a small cut *fraction* over cold
  // boundaries, not winning the raw link count against the aligned stride.
  const Topology topo = buildTopology(fatTree1024());
  const PartitionResult t =
      partitionSwitches(topo, 4, PartitionStrategy::kTopology);
  EXPECT_LE(5 * t.cutLinks, t.totalLinks)
      << "cut=" << t.cutLinks << " of " << t.totalLinks;
}

TEST(ShardPartition, LocalityGroupsStayWholeOnHierarchicalFamilies) {
  // Group-aware seeding packs whole generator-labeled groups (fat-tree
  // position columns, dragonfly groups), and refinement only moves a switch
  // for a strict weighted-cut win — which never pays inside these densely
  // wired groups. So the hint must survive to the final assignment: no
  // group ever straddles a shard boundary.
  for (const SimParams& p : {fatTree1024(), dragonfly1024()}) {
    const Topology topo = buildTopology(p);
    ASSERT_TRUE(topo.hasLocalityGroups());
    for (int shards : {2, 4, 8}) {
      const PartitionResult r =
          partitionSwitches(topo, shards, PartitionStrategy::kTopology);
      std::vector<std::int32_t> shardOfGroup(
          static_cast<std::size_t>(topo.numSwitches()), -1);
      for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
        const auto g = static_cast<std::size_t>(topo.localityGroupOf(s));
        if (shardOfGroup[g] < 0) {
          shardOfGroup[g] = r.shardOf[static_cast<std::size_t>(s)];
        }
        EXPECT_EQ(r.shardOf[static_cast<std::size_t>(s)], shardOfGroup[g])
            << "group " << g << " split at switch " << s
            << " (shards=" << shards << ")";
      }
    }
  }
}

TEST(ShardPartition, GroupSeededFatTreeCutIsGeometricallyMinimal) {
  // With columns packed contiguously, a 4-way split of the arity-2 tree
  // cuts exactly the cross links of the two top butterfly stages: 2 stages
  // x 128 links. Matching the stride-aligned baseline's raw cut while
  // carrying far less traffic over it is the whole point of the hint.
  const Topology topo = buildTopology(fatTree1024());
  const PartitionResult t =
      partitionSwitches(topo, 4, PartitionStrategy::kTopology);
  EXPECT_EQ(t.cutLinks, 256u);
  EXPECT_DOUBLE_EQ(t.imbalance, 1.0);
}

TEST(ShardPartition, RejectsMalformedLocalityGroups) {
  Topology topo(4, 4, 1);
  EXPECT_THROW(topo.setLocalityGroups({0, 1}), std::invalid_argument);
  EXPECT_THROW(topo.setLocalityGroups({0, 1, 2, 4}), std::invalid_argument);
  EXPECT_THROW(topo.setLocalityGroups({0, -1, 1, 1}), std::invalid_argument);
  EXPECT_FALSE(topo.hasLocalityGroups());
  topo.setLocalityGroups({0, 0, 1, 1});
  EXPECT_TRUE(topo.hasLocalityGroups());
  EXPECT_EQ(topo.localityGroupOf(2), 1);
}

TEST(ShardPartition, SingleShardIsTrivial) {
  const Topology topo = buildTopology(irregular64());
  const PartitionResult r =
      partitionSwitches(topo, 1, PartitionStrategy::kTopology);
  for (const std::int32_t k : r.shardOf) EXPECT_EQ(k, 0);
  EXPECT_EQ(r.cutLinks, 0u);
  EXPECT_GT(r.totalLinks, 0u);
}

TEST(ShardPartition, BaselineStrategiesAreWellFormedToo) {
  for (const SimParams& p : {fatTree1024(), irregular64()}) {
    const Topology topo = buildTopology(p);
    for (const PartitionStrategy st :
         {PartitionStrategy::kBlock, PartitionStrategy::kRoundRobin}) {
      const PartitionResult r = partitionSwitches(topo, 4, st);
      expectWellFormed(topo, r, 4);
    }
  }
}

TEST(ShardPartition, RejectsInvalidArguments) {
  const Topology topo = buildTopology(irregular64());
  EXPECT_THROW(partitionSwitches(topo, 0, PartitionStrategy::kTopology),
               std::invalid_argument);
  EXPECT_THROW(partitionSwitches(topo, 65, PartitionStrategy::kTopology),
               std::invalid_argument);
  EXPECT_THROW(
      partitionSwitches(topo, 2, PartitionStrategy::kTopology, -0.5),
      std::invalid_argument);
}

TEST(ShardPartition, StrategyNamesAreStable) {
  // The bench JSON and committed baselines key on these strings.
  EXPECT_STREQ(partitionStrategyName(PartitionStrategy::kBlock), "block");
  EXPECT_STREQ(partitionStrategyName(PartitionStrategy::kRoundRobin),
               "round-robin");
  EXPECT_STREQ(partitionStrategyName(PartitionStrategy::kTopology),
               "topology");
}

}  // namespace
}  // namespace ibadapt
