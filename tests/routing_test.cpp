//
// Minimal adaptive routing + route-set composition tests.
//
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "routing/minimal.hpp"
#include "routing/route_set.hpp"
#include "routing/updown.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

TEST(MinimalRouting, DistancesMatchBfs) {
  const Topology topo = makeTorus2D(4, 4, 2);
  const MinimalAdaptiveRouting mr(topo);
  const auto dist = allPairsDistances(topo);
  for (SwitchId a = 0; a < 16; ++a) {
    for (SwitchId b = 0; b < 16; ++b) {
      EXPECT_EQ(mr.distance(a, b),
                dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
    }
  }
}

TEST(MinimalRouting, EveryMinimalPortDecreasesDistance) {
  const Topology topo = irregular(16, 4, 31);
  const MinimalAdaptiveRouting mr(topo);
  for (SwitchId a = 0; a < 16; ++a) {
    for (SwitchId b = 0; b < 16; ++b) {
      if (a == b) {
        EXPECT_TRUE(mr.minimalPorts(a, b).empty());
        continue;
      }
      const auto& ports = mr.minimalPorts(a, b);
      ASSERT_FALSE(ports.empty());
      for (PortIndex p : ports) {
        const SwitchId nb = topo.peer(a, p).id;
        EXPECT_EQ(mr.distance(nb, b), mr.distance(a, b) - 1);
      }
    }
  }
}

TEST(MinimalRouting, FindsEveryMinimalPort) {
  // Exhaustive cross-check: a port is minimal iff listed.
  const Topology topo = irregular(8, 4, 32);
  const MinimalAdaptiveRouting mr(topo);
  for (SwitchId a = 0; a < 8; ++a) {
    for (SwitchId b = 0; b < 8; ++b) {
      if (a == b) continue;
      const auto& listed = mr.minimalPorts(a, b);
      for (const auto& [nb, port] : topo.switchNeighbors(a)) {
        const bool minimal = mr.distance(nb, b) == mr.distance(a, b) - 1;
        const bool present =
            std::find(listed.begin(), listed.end(), port) != listed.end();
        EXPECT_EQ(minimal, present);
      }
    }
  }
}

TEST(MinimalRouting, TorusHasTwoMinimalPortsOffAxis) {
  const Topology topo = makeTorus2D(4, 4, 1);
  const MinimalAdaptiveRouting mr(topo);
  // From (0,0) to (1,1) = switch 5: x and y steps both minimal.
  EXPECT_EQ(mr.minimalPorts(0, 5).size(), 2u);
  // From (0,0) to (1,0) = switch 1: only the +x hop is minimal.
  EXPECT_EQ(mr.minimalPorts(0, 1).size(), 1u);
}

TEST(MinimalRouting, HypercubeMinimalPortCount) {
  const Topology topo = makeHypercube(4, 1);
  const MinimalAdaptiveRouting mr(topo);
  for (SwitchId b = 1; b < 16; ++b) {
    // From 0 to b: exactly popcount(b) minimal directions.
    EXPECT_EQ(mr.minimalPorts(0, b).size(),
              static_cast<std::size_t>(__builtin_popcount(
                  static_cast<unsigned>(b))));
  }
}

// ---------------------------------------------------------------------------
// RouteSet
// ---------------------------------------------------------------------------

class RouteSetFixture : public ::testing::Test {
 protected:
  RouteSetFixture()
      : topo(irregular(16, 4, 33)),
        updown(topo),
        minimal(topo),
        routes(topo, updown, minimal) {}

  Topology topo;
  UpDownRouting updown;
  MinimalAdaptiveRouting minimal;
  RouteSet routes;
};

TEST_F(RouteSetFixture, EscapeMatchesUpDown) {
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const auto& spec = routes.options(sw, n);
      if (topo.switchOfNode(n) == sw) {
        EXPECT_EQ(spec.escapePort, topo.portOfNode(n));
        EXPECT_TRUE(spec.adaptivePorts.empty());
      } else {
        EXPECT_EQ(spec.escapePort, updown.nextHopPort(sw, topo.switchOfNode(n)));
        EXPECT_EQ(spec.adaptivePorts,
                  minimal.minimalPorts(sw, topo.switchOfNode(n)));
      }
    }
  }
}

TEST_F(RouteSetFixture, CappedPortsAreSubsetOfMinimal) {
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      if (topo.switchOfNode(n) == sw) continue;
      const auto& full = routes.options(sw, n).adaptivePorts;
      for (int x : {2, 4}) {
        const auto capped = routes.cappedAdaptivePorts(sw, n, x);
        EXPECT_LE(static_cast<int>(capped.size()), x - 1);
        EXPECT_EQ(capped.size(),
                  std::min<std::size_t>(full.size(),
                                        static_cast<std::size_t>(x - 1)));
        for (PortIndex p : capped) {
          EXPECT_NE(std::find(full.begin(), full.end(), p), full.end());
        }
        // No duplicates within the cap.
        std::set<PortIndex> uniq(capped.begin(), capped.end());
        EXPECT_EQ(uniq.size(), capped.size());
      }
    }
  }
}

TEST_F(RouteSetFixture, CapOfOneLeavesOnlyEscape) {
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    EXPECT_TRUE(routes.cappedAdaptivePorts(sw, 0, 1).empty());
  }
}

TEST_F(RouteSetFixture, RotationSpreadsPortChoice) {
  // Across many (sw, dest) pairs with >= 2 minimal ports and a cap of 2,
  // the rotation must not always pick the same index.
  int firstIdx = 0, otherIdx = 0;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      if (topo.switchOfNode(n) == sw) continue;
      const auto& full = routes.options(sw, n).adaptivePorts;
      if (full.size() < 2) continue;
      const auto capped = routes.cappedAdaptivePorts(sw, n, 2);
      ASSERT_EQ(capped.size(), 1u);
      if (capped[0] == full[0]) {
        ++firstIdx;
      } else {
        ++otherIdx;
      }
    }
  }
  EXPECT_GT(firstIdx, 0);
  EXPECT_GT(otherIdx, 0);  // rotation actually rotates
}

}  // namespace
}  // namespace ibadapt
