//
// Extended traffic patterns (transpose / shuffle / locality) and the
// compound-Poisson burst model.
//
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "api/simulation.hpp"
#include "traffic/synthetic.hpp"

namespace ibadapt {
namespace {

TEST(BitTranspose, SwapsHalves) {
  EXPECT_EQ(bitTranspose(0b001011, 6), 0b011001);
  EXPECT_EQ(bitTranspose(0b111000, 6), 0b000111);
  EXPECT_EQ(bitTranspose(0, 6), 0);
  for (NodeId v = 0; v < 64; ++v) {
    EXPECT_EQ(bitTranspose(bitTranspose(v, 6), 6), v);  // involution
  }
}

TEST(BitShuffle, RotatesLeft) {
  EXPECT_EQ(bitShuffle(0b00001, 5), 0b00010);
  EXPECT_EQ(bitShuffle(0b10000, 5), 0b00001);
  EXPECT_EQ(bitShuffle(0b10110, 5), 0b01101);
  // Applying `bits` times returns to the start.
  NodeId v = 0b01101;
  for (int i = 0; i < 5; ++i) v = bitShuffle(v, 5);
  EXPECT_EQ(v, 0b01101);
}

TrafficSpec baseSpec(TrafficPattern p, int nodes = 64) {
  TrafficSpec s;
  s.pattern = p;
  s.numNodes = nodes;
  s.packetBytes = 32;
  s.loadBytesPerNsPerNode = 0.05;
  return s;
}

TEST(PatternTranspose, FixedMappingAndNoSelfSend) {
  SyntheticTraffic t(baseSpec(TrafficPattern::kTranspose), 1);
  Rng rng(2);
  for (NodeId src = 0; src < 64; ++src) {
    const NodeId dst = t.makePacket(src, rng).dst;
    EXPECT_NE(dst, src);
    const NodeId expected = bitTranspose(src, 6);
    if (expected != src) {
      EXPECT_EQ(dst, expected);
    }
  }
}

TEST(PatternTranspose, RequiresEvenBits) {
  EXPECT_THROW(SyntheticTraffic(baseSpec(TrafficPattern::kTranspose, 32), 1),
               std::invalid_argument);
}

TEST(PatternShuffle, FixedMappingAndNoSelfSend) {
  SyntheticTraffic t(baseSpec(TrafficPattern::kShuffle, 32), 1);
  Rng rng(2);
  for (NodeId src = 0; src < 32; ++src) {
    const NodeId dst = t.makePacket(src, rng).dst;
    EXPECT_NE(dst, src);
  }
  EXPECT_EQ(t.makePacket(1, rng).dst, 2);
  EXPECT_EQ(t.makePacket(16, rng).dst, 1);
}

TEST(PatternLocality, StaysInWindow) {
  auto spec = baseSpec(TrafficPattern::kLocality);
  spec.localityWindow = 4;
  SyntheticTraffic t(spec, 1);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const NodeId src = static_cast<NodeId>(i % 64);
    const NodeId dst = t.makePacket(src, rng).dst;
    EXPECT_NE(dst, src);
    const int fwd = ((dst - src) % 64 + 64) % 64;
    const int bwd = ((src - dst) % 64 + 64) % 64;
    EXPECT_LE(std::min(fwd, bwd), 4);
  }
}

TEST(PatternLocality, WindowValidation) {
  auto spec = baseSpec(TrafficPattern::kLocality);
  spec.localityWindow = 0;
  EXPECT_THROW(SyntheticTraffic(spec, 1), std::invalid_argument);
  spec.localityWindow = 64;
  EXPECT_THROW(SyntheticTraffic(spec, 1), std::invalid_argument);
}

TEST(Burstiness, PreservesAverageRate) {
  auto spec = baseSpec(TrafficPattern::kUniform);
  spec.loadBytesPerNsPerNode = 0.05;  // mean gap 640 ns
  spec.burstiness = 0.02;
  spec.burstGapMeanNs = 10'000.0;
  SyntheticTraffic t(spec, 1);
  Rng rng(4);
  SimTime now = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) now = t.nextGenTime(0, now, rng);
  EXPECT_NEAR(static_cast<double>(now) / n, 640.0, 25.0);
}

TEST(Burstiness, IncreasesVariance) {
  auto mkVariance = [](double burstiness) {
    auto spec = baseSpec(TrafficPattern::kUniform);
    spec.burstiness = burstiness;
    spec.burstGapMeanNs = 5'000.0;
    SyntheticTraffic t(spec, 1);
    Rng rng(5);
    SimTime prev = 0;
    double mean = 0, m2 = 0;
    const int n = 100000;
    for (int i = 1; i <= n; ++i) {
      const SimTime next = t.nextGenTime(0, prev, rng);
      const double gap = static_cast<double>(next - prev);
      const double d = gap - mean;
      mean += d / i;
      m2 += d * (gap - mean);
      prev = next;
    }
    return m2 / (n - 1);
  };
  EXPECT_GT(mkVariance(0.05), 2.0 * mkVariance(0.0));
}

TEST(Burstiness, RejectsImpossibleCompensation) {
  auto spec = baseSpec(TrafficPattern::kUniform);
  spec.loadBytesPerNsPerNode = 0.05;  // mean gap 640 ns
  spec.burstiness = 0.5;
  spec.burstGapMeanNs = 10'000.0;  // 0.5*10000 > 640: cannot compensate
  EXPECT_THROW(SyntheticTraffic(spec, 1), std::invalid_argument);
}

TEST(PatternsEndToEnd, AllPatternsSimulateHealthily) {
  for (TrafficPattern pat :
       {TrafficPattern::kTranspose, TrafficPattern::kShuffle,
        TrafficPattern::kLocality}) {
    SimParams p;
    p.numSwitches = 16;  // 64 nodes: power of two with even bit count
    p.pattern = pat;
    p.warmupPackets = 300;
    p.measurePackets = 3000;
    p.loadBytesPerNsPerNode = 0.03;
    const SimResults r = runSimulation(p);
    EXPECT_TRUE(r.measurementComplete) << static_cast<int>(pat);
    EXPECT_FALSE(r.deadlockSuspected) << static_cast<int>(pat);
    EXPECT_EQ(r.inOrderViolations, 0u) << static_cast<int>(pat);
  }
}

TEST(BurstyEndToEnd, HigherLatencyThanSmoothAtSameLoad) {
  SimParams p;
  p.numSwitches = 8;
  p.loadBytesPerNsPerNode = 0.05;
  p.warmupPackets = 500;
  p.measurePackets = 8000;
  SimParams bursty = p;
  bursty.burstiness = 0.02;
  bursty.burstGapMeanNs = 10'000.0;
  const SimResults smooth = runSimulation(p);
  const SimResults burst = runSimulation(bursty);
  EXPECT_TRUE(burst.measurementComplete);
  EXPECT_GT(burst.avgLatencyNs, smooth.avgLatencyNs)
      << "clumped arrivals should queue more";
}

TEST(Utilization, ReportedAndBounded) {
  SimParams p;
  p.numSwitches = 8;
  p.loadBytesPerNsPerNode = 0.05;
  p.warmupPackets = 300;
  p.measurePackets = 4000;
  const SimResults r = runSimulation(p);
  EXPECT_GT(r.meanLinkUtilization, 0.0);
  EXPECT_GE(r.maxLinkUtilization, r.meanLinkUtilization);
  EXPECT_LE(r.maxLinkUtilization, 1.0 + 1e-9);
}

TEST(Utilization, ScalesWithLoad) {
  SimParams lo;
  lo.numSwitches = 8;
  lo.loadBytesPerNsPerNode = 0.02;
  lo.warmupPackets = 300;
  lo.measurePackets = 3000;
  SimParams hi = lo;
  hi.loadBytesPerNsPerNode = 0.06;
  const SimResults a = runSimulation(lo);
  const SimResults b = runSimulation(hi);
  EXPECT_GT(b.meanLinkUtilization, a.meanLinkUtilization);
}

}  // namespace
}  // namespace ibadapt
