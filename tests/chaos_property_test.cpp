//
// Property-style chaos suite: random irregular topologies under every fault
// class at once — fail-stop link faults with recovery, bit-error
// corruption, and credit-update loss — must still deliver exactly once,
// strand zero credits, and satisfy every watchdog invariant, across seeds.
//
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "api/simulation.hpp"
#include "check/invariant_watchdog.hpp"
#include "fault/fault_audit.hpp"
#include "fault/fault_campaign.hpp"
#include "host/reliable_transport.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"

namespace ibadapt {
namespace {

TEST(ChaosProperty, MixedFaultClassesKeepEveryInvariantAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));

    Rng topoRng(1000 + seed * 13);
    IrregularSpec ts;
    ts.numSwitches = 8 + static_cast<int>(seed % 2) * 4;
    ts.linksPerSwitch = 4;
    ts.nodesPerSwitch = 4;
    const Topology topo = makeIrregular(ts, topoRng);

    Fabric fabric(topo, FabricParams{});
    SubnetManager sm(fabric);
    sm.configure();

    // All three fault classes at once, deterministic in the seed.
    FaultCampaignSpec spec;
    spec.mtbfNs = 500'000;
    spec.mttrNs = 200'000;
    spec.seed = seed;
    spec.maxStochasticFaults = 5;
    spec.sweepDelayNs = 40'000;
    spec.transient.berPerBit = 2e-5;
    spec.transient.creditLossRate = 0.05;
    spec.transient.resyncPeriodNs = 50'000;
    spec.transient.seed = seed * 7 + 1;
    FaultCampaign campaign(fabric, sm, spec);

    WatchdogSpec ws;
    ws.periodNs = 250'000;
    ws.policy = WatchdogPolicy::kRecord;
    InvariantWatchdog dog(ws);
    dog.attachTo(fabric);

    testing::ScriptedTraffic inner;
    const NodeId n = topo.numNodes();
    const SimTime lastGen = 2'000'000;
    for (NodeId src = 0; src < n; ++src) {
      const NodeId dst = (src + 1 + static_cast<NodeId>(seed)) % n;
      for (int i = 0; i < 8; ++i) {
        inner.add(src, src * 173 + static_cast<SimTime>(i) * (lastGen / 8),
                  dst == src ? (dst + 1) % n : dst, 32, /*adaptive=*/true);
      }
    }
    ReliableTransportSpec rts;
    rts.baseRtoNs = 30'000;
    rts.maxRtoNs = 480'000;
    ReliableTransport rt(inner, n, rts);
    testing::RecordingObserver obs;
    rt.attachObserver(&obs);
    fabric.attachTraffic(&rt, 1);
    fabric.attachObserver(&rt);
    fabric.start();

    RunLimits limits;
    limits.endTime = lastGen + 10'000'000;  // retransmit + repair tail
    campaign.run(limits);

    // Invariants held at every periodic check.
    const WatchdogStats& st = dog.stats();
    EXPECT_GT(st.checksRun, 0u);
    EXPECT_EQ(st.violations(), 0u) << st.summary();

    // Exactly-once delivery despite drops, corruption, and leaks.
    EXPECT_EQ(rt.uniqueSent(), static_cast<std::uint64_t>(n) * 8);
    EXPECT_EQ(rt.uniqueDelivered(), rt.uniqueSent());
    EXPECT_EQ(rt.abandoned(), 0u);
    EXPECT_EQ(rt.outstanding(), 0u);
    std::map<std::tuple<NodeId, NodeId, std::uint32_t>, int> seen;
    for (const auto& d : obs.deliveries) {
      ++seen[{d.pkt.src, d.pkt.dst, d.pkt.e2eSeq}];
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n) * 8);
    for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);

    // Credit books: every leak healed, nothing outstanding, post-sweep
    // audits all green.
    const ResilienceStats& rs = campaign.stats();
    EXPECT_EQ(rs.creditsResynced, rs.creditsLeaked);
    EXPECT_EQ(fabric.leakedCreditsOutstanding(), 0);
    EXPECT_TRUE(rs.allAuditsPassed()) << rs.firstAuditFailure;

    // Zero stuck credits at drain. A link still down at the horizon keeps
    // its books too (credits flow across failed links by design), so the
    // quiescent audit applies either way.
    const AuditReport audit = auditFabric(fabric, /*expectQuiescent=*/true);
    EXPECT_TRUE(audit.ok()) << audit.detail;
    EXPECT_FALSE(fabric.deadlockSuspected());
  }
}

TEST(ChaosProperty, HotspotPlusFaultsPlusCongestionControlStaysExactlyOnce) {
  // Hotspot traffic hammering one victim, a link-fault campaign, and the
  // full congestion-management loop armed, all at once. Every guarantee
  // must survive simultaneously: exactly-once delivery, zero watchdog
  // violations (throttle-induced idleness must not read as deadlock), and
  // bit-identical results across kernels and thread counts.
  auto runOnce = [](SimKernel kernel, int threads) {
    SimParams p;
    p.numSwitches = 8;
    p.linksPerSwitch = 4;
    p.nodesPerSwitch = 4;
    p.topoSeed = 17;
    p.fabric.kernel = kernel;
    p.fabric.threads = threads > 0 ? threads : 1;
    p.pattern = TrafficPattern::kHotspot;
    p.hotspotFraction = 0.4;
    p.hotspotNode = 0;
    p.loadBytesPerNsPerNode = 0.015;
    p.packetBytes = 128;
    p.warmupPackets = 200;
    p.measurePackets = 2'500;
    p.maxSimTimeNs = 120'000'000;
    p.congestionControl = true;
    p.faultMtbfNs = 2'000'000;
    p.faultMttrNs = 500'000;
    p.faultSeed = 3;
    p.maxStochasticFaults = 4;
    p.sweepDelayNs = 40'000;
    p.invariantPeriodNs = 100'000;
    return runSimulation(p);
  };

  const SimResults ref = runOnce(SimKernel::kCalendar, 0);
  EXPECT_TRUE(ref.measurementComplete) << ref.summary();
  EXPECT_FALSE(ref.deadlockSuspected);
  EXPECT_EQ(ref.invariants.violations(), 0u) << ref.invariants.summary();
  EXPECT_EQ(ref.inOrderViolations, 0u);
  EXPECT_TRUE(ref.faultCampaignRan);
  // The loop fired under the hotspot even while links were failing.
  EXPECT_GT(ref.congestion.fecnMarked, 0u);
  EXPECT_GT(ref.congestion.cnpsReceived, 0u);
  // Exactly-once: dedup upstream of the stats observer means a delivered
  // count never exceeding unique sends, and no in-order violations above.
  EXPECT_GT(ref.resilience.uniqueDelivered, 0u);
  EXPECT_LE(ref.resilience.uniqueDelivered, ref.resilience.uniqueSent);

  struct Arm {
    SimKernel kernel;
    int threads;
    const char* what;
  };
  const Arm arms[] = {{SimKernel::kLegacyHeap, 0, "legacy-heap"},
                      {SimKernel::kParallel, 1, "parallel-1"},
                      {SimKernel::kParallel, 4, "parallel-4"},
                      {SimKernel::kParallel, 8, "parallel-8"}};
  for (const Arm& arm : arms) {
    const SimResults r = runOnce(arm.kernel, arm.threads);
    EXPECT_EQ(r.delivered, ref.delivered) << arm.what;
    EXPECT_EQ(r.kernelEvents, ref.kernelEvents) << arm.what;
    EXPECT_DOUBLE_EQ(r.avgLatencyNs, ref.avgLatencyNs) << arm.what;
    EXPECT_EQ(r.congestion.fecnMarked, ref.congestion.fecnMarked) << arm.what;
    EXPECT_EQ(r.congestion.cnpsReceived, ref.congestion.cnpsReceived)
        << arm.what;
    EXPECT_EQ(r.congestion.rateDecreases, ref.congestion.rateDecreases)
        << arm.what;
    EXPECT_EQ(r.congestion.packetsThrottled, ref.congestion.packetsThrottled)
        << arm.what;
    EXPECT_EQ(r.resilience.uniqueDelivered, ref.resilience.uniqueDelivered)
        << arm.what;
    EXPECT_EQ(r.invariants.violations(), 0u) << arm.what;
  }
}

}  // namespace
}  // namespace ibadapt
