//
// Property-style chaos suite: random irregular topologies under every fault
// class at once — fail-stop link faults with recovery, bit-error
// corruption, and credit-update loss — must still deliver exactly once,
// strand zero credits, and satisfy every watchdog invariant, across seeds.
//
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "check/invariant_watchdog.hpp"
#include "fault/fault_audit.hpp"
#include "fault/fault_campaign.hpp"
#include "host/reliable_transport.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"

namespace ibadapt {
namespace {

TEST(ChaosProperty, MixedFaultClassesKeepEveryInvariantAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));

    Rng topoRng(1000 + seed * 13);
    IrregularSpec ts;
    ts.numSwitches = 8 + static_cast<int>(seed % 2) * 4;
    ts.linksPerSwitch = 4;
    ts.nodesPerSwitch = 4;
    const Topology topo = makeIrregular(ts, topoRng);

    Fabric fabric(topo, FabricParams{});
    SubnetManager sm(fabric);
    sm.configure();

    // All three fault classes at once, deterministic in the seed.
    FaultCampaignSpec spec;
    spec.mtbfNs = 500'000;
    spec.mttrNs = 200'000;
    spec.seed = seed;
    spec.maxStochasticFaults = 5;
    spec.sweepDelayNs = 40'000;
    spec.transient.berPerBit = 2e-5;
    spec.transient.creditLossRate = 0.05;
    spec.transient.resyncPeriodNs = 50'000;
    spec.transient.seed = seed * 7 + 1;
    FaultCampaign campaign(fabric, sm, spec);

    WatchdogSpec ws;
    ws.periodNs = 250'000;
    ws.policy = WatchdogPolicy::kRecord;
    InvariantWatchdog dog(ws);
    dog.attachTo(fabric);

    testing::ScriptedTraffic inner;
    const NodeId n = topo.numNodes();
    const SimTime lastGen = 2'000'000;
    for (NodeId src = 0; src < n; ++src) {
      const NodeId dst = (src + 1 + static_cast<NodeId>(seed)) % n;
      for (int i = 0; i < 8; ++i) {
        inner.add(src, src * 173 + static_cast<SimTime>(i) * (lastGen / 8),
                  dst == src ? (dst + 1) % n : dst, 32, /*adaptive=*/true);
      }
    }
    ReliableTransportSpec rts;
    rts.baseRtoNs = 30'000;
    rts.maxRtoNs = 480'000;
    ReliableTransport rt(inner, n, rts);
    testing::RecordingObserver obs;
    rt.attachObserver(&obs);
    fabric.attachTraffic(&rt, 1);
    fabric.attachObserver(&rt);
    fabric.start();

    RunLimits limits;
    limits.endTime = lastGen + 10'000'000;  // retransmit + repair tail
    campaign.run(limits);

    // Invariants held at every periodic check.
    const WatchdogStats& st = dog.stats();
    EXPECT_GT(st.checksRun, 0u);
    EXPECT_EQ(st.violations(), 0u) << st.summary();

    // Exactly-once delivery despite drops, corruption, and leaks.
    EXPECT_EQ(rt.uniqueSent(), static_cast<std::uint64_t>(n) * 8);
    EXPECT_EQ(rt.uniqueDelivered(), rt.uniqueSent());
    EXPECT_EQ(rt.abandoned(), 0u);
    EXPECT_EQ(rt.outstanding(), 0u);
    std::map<std::tuple<NodeId, NodeId, std::uint32_t>, int> seen;
    for (const auto& d : obs.deliveries) {
      ++seen[{d.pkt.src, d.pkt.dst, d.pkt.e2eSeq}];
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n) * 8);
    for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);

    // Credit books: every leak healed, nothing outstanding, post-sweep
    // audits all green.
    const ResilienceStats& rs = campaign.stats();
    EXPECT_EQ(rs.creditsResynced, rs.creditsLeaked);
    EXPECT_EQ(fabric.leakedCreditsOutstanding(), 0);
    EXPECT_TRUE(rs.allAuditsPassed()) << rs.firstAuditFailure;

    // Zero stuck credits at drain. A link still down at the horizon keeps
    // its books too (credits flow across failed links by design), so the
    // quiescent audit applies either way.
    const AuditReport audit = auditFabric(fabric, /*expectQuiescent=*/true);
    EXPECT_TRUE(audit.ok()) << audit.detail;
    EXPECT_FALSE(fabric.deadlockSuspected());
  }
}

}  // namespace
}  // namespace ibadapt
