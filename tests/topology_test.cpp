#include <gtest/gtest.h>

#include <set>

#include "topology/generators.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

TEST(Topology, NodeAttachmentConvention) {
  Topology topo(4, 8, 4);
  EXPECT_EQ(topo.numNodes(), 16);
  for (NodeId n = 0; n < topo.numNodes(); ++n) {
    const SwitchId sw = topo.switchOfNode(n);
    const PortIndex p = topo.portOfNode(n);
    EXPECT_EQ(topo.nodeAt(sw, p), n);
    const Peer& peer = topo.peer(sw, p);
    EXPECT_EQ(peer.kind, PeerKind::kNode);
    EXPECT_EQ(peer.id, n);
  }
}

TEST(Topology, AddLinkWiresBothDirections) {
  Topology topo(2, 6, 4);
  ASSERT_TRUE(topo.addLink(0, 1));
  const Peer& p0 = topo.peer(0, 4);
  const Peer& p1 = topo.peer(1, 4);
  EXPECT_EQ(p0.kind, PeerKind::kSwitch);
  EXPECT_EQ(p0.id, 1);
  EXPECT_EQ(p0.port, 4);
  EXPECT_EQ(p1.id, 0);
  EXPECT_EQ(p1.port, 4);
  EXPECT_EQ(topo.numLinks(), 1);
}

TEST(Topology, AddLinkRejectsDuplicates) {
  Topology topo(2, 8, 4);
  EXPECT_TRUE(topo.addLink(0, 1));
  EXPECT_FALSE(topo.addLink(0, 1));  // single link per switch pair
  EXPECT_FALSE(topo.addLink(1, 0));
  EXPECT_EQ(topo.numLinks(), 1);
}

TEST(Topology, AddLinkRejectsSelfLoop) {
  Topology topo(2, 8, 4);
  EXPECT_THROW(topo.addLink(0, 0), std::invalid_argument);
}

TEST(Topology, AddLinkFailsWhenPortsExhausted) {
  Topology topo(3, 5, 4);  // exactly one inter-switch port per switch
  EXPECT_TRUE(topo.addLink(0, 1));
  EXPECT_FALSE(topo.addLink(0, 2));  // switch 0 has no free port left
}

TEST(Topology, InvalidDimensionsThrow) {
  EXPECT_THROW(Topology(0, 8, 4), std::invalid_argument);
  EXPECT_THROW(Topology(4, 2, 4), std::invalid_argument);  // nodes > ports
}

TEST(Topology, BfsDistancesOnLine) {
  Topology topo(3, 6, 4);
  topo.addLink(0, 1);
  topo.addLink(1, 2);
  const auto d = topo.bfsDistances(0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(topo.connectedSwitchGraph());
}

TEST(Topology, DisconnectedDetected) {
  Topology topo(4, 6, 4);
  topo.addLink(0, 1);
  topo.addLink(2, 3);
  EXPECT_FALSE(topo.connectedSwitchGraph());
  EXPECT_EQ(topo.bfsDistances(0)[2], -1);
}

TEST(Topology, AllPairsSymmetric) {
  Topology topo(4, 7, 4);
  topo.addLink(0, 1);
  topo.addLink(1, 2);
  topo.addLink(2, 3);
  topo.addLink(3, 0);
  const auto dist = allPairsDistances(topo);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(dist[a][b], dist[b][a]);
    }
  }
  EXPECT_EQ(dist[0][2], 2);
  EXPECT_EQ(dist[0][3], 1);
}

// ---------------------------------------------------------------------------
// Regular generators: analytically known structure.
// ---------------------------------------------------------------------------

TEST(Generators, RingStructure) {
  const Topology topo = makeRing(6, 4);
  EXPECT_EQ(topo.numSwitches(), 6);
  EXPECT_EQ(topo.numLinks(), 6);
  for (SwitchId sw = 0; sw < 6; ++sw) {
    EXPECT_EQ(topo.interSwitchDegree(sw), 2);
  }
  EXPECT_EQ(topo.bfsDistances(0)[3], 3);  // opposite side of the ring
}

TEST(Generators, Mesh2DStructure) {
  const Topology topo = makeMesh2D(3, 3, 2);
  EXPECT_EQ(topo.numSwitches(), 9);
  EXPECT_EQ(topo.numLinks(), 12);  // 2*w*h - w - h
  EXPECT_EQ(topo.interSwitchDegree(4), 4);  // center
  EXPECT_EQ(topo.interSwitchDegree(0), 2);  // corner
  EXPECT_EQ(topo.bfsDistances(0)[8], 4);    // manhattan distance
}

TEST(Generators, Torus2DStructure) {
  const Topology topo = makeTorus2D(4, 4, 2);
  EXPECT_EQ(topo.numSwitches(), 16);
  EXPECT_EQ(topo.numLinks(), 32);  // 2*w*h
  for (SwitchId sw = 0; sw < 16; ++sw) {
    EXPECT_EQ(topo.interSwitchDegree(sw), 4);
  }
  EXPECT_EQ(topo.bfsDistances(0)[2], 2);   // wrap makes max x-dist 2
  EXPECT_EQ(topo.bfsDistances(0)[10], 4);  // (2,2): 2+2
}

TEST(Generators, TorusRejectsTinyDimensions) {
  EXPECT_THROW(makeTorus2D(2, 4, 2), std::invalid_argument);
}

TEST(Generators, HypercubeStructure) {
  const Topology topo = makeHypercube(4, 1);
  EXPECT_EQ(topo.numSwitches(), 16);
  EXPECT_EQ(topo.numLinks(), 32);  // n * dim / 2
  const auto d = topo.bfsDistances(0);
  for (SwitchId sw = 0; sw < 16; ++sw) {
    EXPECT_EQ(d[sw], __builtin_popcount(static_cast<unsigned>(sw)));
  }
}

// ---------------------------------------------------------------------------
// Irregular generator: the paper's construction rules, across sizes/seeds.
// ---------------------------------------------------------------------------

struct IrregularCase {
  int switches;
  int links;
  std::uint64_t seed;
};

class IrregularGenTest : public ::testing::TestWithParam<IrregularCase> {};

TEST_P(IrregularGenTest, SatisfiesPaperConstraints) {
  const auto c = GetParam();
  Rng rng(c.seed);
  IrregularSpec spec;
  spec.numSwitches = c.switches;
  spec.linksPerSwitch = c.links;
  spec.nodesPerSwitch = 4;
  const Topology topo = makeIrregular(spec, rng);

  EXPECT_EQ(topo.numSwitches(), c.switches);
  EXPECT_EQ(topo.numNodes(), c.switches * 4);
  EXPECT_EQ(topo.numLinks(), c.switches * c.links / 2);
  EXPECT_TRUE(topo.connectedSwitchGraph());
  for (SwitchId sw = 0; sw < c.switches; ++sw) {
    EXPECT_EQ(topo.interSwitchDegree(sw), c.links);
    // No duplicate neighbors (single link per switch pair).
    std::set<SwitchId> nbs;
    for (const auto& [nb, port] : topo.switchNeighbors(sw)) {
      (void)port;
      EXPECT_NE(nb, sw);
      EXPECT_TRUE(nbs.insert(nb).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, IrregularGenTest,
    ::testing::Values(IrregularCase{8, 4, 1}, IrregularCase{8, 4, 2},
                      IrregularCase{8, 6, 3}, IrregularCase{16, 4, 4},
                      IrregularCase{16, 6, 5}, IrregularCase{32, 4, 6},
                      IrregularCase{32, 6, 7}, IrregularCase{64, 4, 8},
                      IrregularCase{64, 6, 9}, IrregularCase{24, 4, 10}));

TEST(IrregularGen, DeterministicInSeed) {
  IrregularSpec spec;
  spec.numSwitches = 16;
  spec.linksPerSwitch = 4;
  Rng r1(99), r2(99);
  const Topology a = makeIrregular(spec, r1);
  const Topology b = makeIrregular(spec, r2);
  EXPECT_EQ(a.describe(), b.describe());
}

TEST(IrregularGen, DifferentSeedsUsuallyDiffer) {
  IrregularSpec spec;
  spec.numSwitches = 16;
  spec.linksPerSwitch = 4;
  Rng r1(1), r2(2);
  EXPECT_NE(makeIrregular(spec, r1).describe(),
            makeIrregular(spec, r2).describe());
}

TEST(IrregularGen, RejectsInfeasibleParameters) {
  Rng rng(1);
  IrregularSpec odd;
  odd.numSwitches = 5;
  odd.linksPerSwitch = 3;  // odd stub count
  EXPECT_THROW(makeIrregular(odd, rng), std::invalid_argument);

  IrregularSpec tooDense;
  tooDense.numSwitches = 4;
  tooDense.linksPerSwitch = 4;  // > numSwitches - 1
  EXPECT_THROW(makeIrregular(tooDense, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ibadapt
