//
// Cross-cutting invariants, property-style: packet conservation, credit
// restoration, routing-table sanity over many random topologies, and
// deterministic replay of whole simulations.
//
#include <gtest/gtest.h>

#include "api/simulation.hpp"
#include "fabric/fabric.hpp"
#include "routing/minimal.hpp"
#include "routing/updown.hpp"
#include "stats/collector.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"
#include "traffic/synthetic.hpp"

namespace ibadapt {
namespace {

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, PacketConservationAfterDrain) {
  // Run an open-loop burst, then let the network drain completely: every
  // generated packet must be delivered (no faults => no drops), every
  // buffer empty, every credit restored.
  const Topology topo = irregular(16, 4, static_cast<std::uint64_t>(GetParam()));
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();

  TrafficSpec ts;
  ts.numNodes = topo.numNodes();
  ts.loadBytesPerNsPerNode = 0.08;
  ts.adaptiveFraction = 0.7;
  SyntheticTraffic traffic(ts, static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  fabric.attachTraffic(&traffic, static_cast<std::uint64_t>(GetParam()));
  fabric.start();

  // Generation horizon 300 us, drain horizon far beyond.
  RunLimits gen;
  gen.endTime = 300'000;
  fabric.run(gen);
  RunLimits drain;
  drain.endTime = 300'000'000;
  drain.generationEndTime = 0;  // pure drain
  fabric.run(drain);

  const auto& c = fabric.counters();
  EXPECT_GT(c.generated, 500u);
  EXPECT_EQ(c.generated, c.delivered) << "conservation violated";
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(fabric.livePackets(), 0u);
  EXPECT_FALSE(fabric.deadlockSuspected());

  // Every output port back to full credits; every buffer empty.
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (PortIndex p = 0; p < topo.portsPerSwitch(); ++p) {
      const Peer& peer = topo.peer(sw, p);
      if (peer.kind == PeerKind::kUnused) continue;
      const int expect = peer.kind == PeerKind::kNode ? fp.caRecvCredits
                                                      : fp.bufferCredits;
      for (VlIndex vl = 0; vl < fp.numVls; ++vl) {
        EXPECT_EQ(fabric.outputCredits(sw, p, vl), expect)
            << "sw" << sw << " port" << p;
        EXPECT_EQ(fabric.inputBufferOccupancy(sw, p, vl), 0);
      }
    }
  }
}

TEST_P(SeedSweep, EscapePortsAlwaysLegalUpDown) {
  const Topology topo = irregular(24, 4, static_cast<std::uint64_t>(GetParam()) + 100);
  const UpDownRouting ud(topo);
  const MinimalAdaptiveRouting mr(topo);
  const RouteSet routes(topo, ud, mr);
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const auto& spec = routes.options(sw, n);
      const SwitchId destSw = topo.switchOfNode(n);
      if (destSw == sw) continue;
      // Escape hop continues a legal up*/down* route.
      EXPECT_EQ(spec.escapePort, ud.nextHopPort(sw, destSw));
      // Every adaptive port is strictly distance-decreasing.
      for (PortIndex p : spec.adaptivePorts) {
        const SwitchId nb = topo.peer(sw, p).id;
        EXPECT_EQ(mr.distance(nb, destSw), mr.distance(sw, destSw) - 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 9));

TEST(Invariants, HopCountsBoundedByUpDownWorstCase) {
  // Adaptive packets prefer minimal hops; even escape detours cannot exceed
  // the longest up*/down* table route. Verify measured hop counts stay
  // within that bound at moderate load.
  const Topology topo = irregular(16, 4, 301);
  const UpDownRouting ud(topo);
  int worst = 0;
  for (SwitchId a = 0; a < topo.numSwitches(); ++a) {
    for (SwitchId b = 0; b < topo.numSwitches(); ++b) {
      if (a != b) worst = std::max(worst, ud.tableRouteHops(a, b));
    }
  }

  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();
  TrafficSpec ts;
  ts.numNodes = topo.numNodes();
  ts.loadBytesPerNsPerNode = 0.05;
  SyntheticTraffic traffic(ts, 5);
  testing::RecordingObserver obs;
  fabric.attachTraffic(&traffic, 5);
  fabric.attachObserver(&obs);
  fabric.start();
  RunLimits limits;
  limits.endTime = 300'000;
  fabric.run(limits);
  RunLimits drain;
  drain.endTime = 100'000'000;
  drain.generationEndTime = 0;  // pure drain
  fabric.run(drain);

  ASSERT_GT(obs.deliveries.size(), 100u);
  for (const auto& d : obs.deliveries) {
    // A packet may alternate between adaptive and escape segments, but
    // with minimal-preference its hop count is bounded by the worst legal
    // escape route plus the minimal distance it already covered — use the
    // generous structural bound of worst + diameter.
    EXPECT_LE(d.pkt.hops, worst + topo.numSwitches());
    EXPECT_GE(d.pkt.hops, 1);
    EXPECT_GE(d.pkt.escapeHops, 0);
    EXPECT_LE(d.pkt.escapeHops, d.pkt.hops);
  }
}

TEST(Invariants, SimulationsAreReplayableAcrossProcessesShape) {
  // Determinism probed through the public API at three loads.
  for (double load : {0.02, 0.05, 0.09}) {
    SimParams p;
    p.numSwitches = 8;
    p.loadBytesPerNsPerNode = load;
    p.warmupPackets = 200;
    p.measurePackets = 2000;
    const SimResults a = runSimulation(p);
    const SimResults b = runSimulation(p);
    EXPECT_DOUBLE_EQ(a.avgLatencyNs, b.avgLatencyNs) << load;
    EXPECT_EQ(a.generated, b.generated) << load;
    EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs) << load;
  }
}

TEST(Invariants, AdaptiveForwardsDominateAtLowLoad) {
  // With empty buffers, adaptive packets should almost always find adaptive
  // credits — escape usage stays marginal (it includes final-hop CA
  // deliveries... those count as escape only if the CA port is the escape
  // entry; the census below just requires adaptive forwards to be the
  // majority of inter-switch forwards).
  SimParams p;
  p.numSwitches = 16;
  p.adaptiveFraction = 1.0;
  p.loadBytesPerNsPerNode = 0.01;
  p.warmupPackets = 200;
  p.measurePackets = 3000;
  const SimResults r = runSimulation(p);
  EXPECT_GT(r.adaptiveForwardFraction, 0.5);
}

TEST(Invariants, ZeroAdaptiveTrafficNeverUsesAdaptiveOptions) {
  SimParams p;
  p.numSwitches = 16;
  p.adaptiveFraction = 0.0;
  p.saturation = true;
  p.warmupPackets = 300;
  p.measurePackets = 3000;
  const SimResults r = runSimulation(p);
  EXPECT_DOUBLE_EQ(r.adaptiveForwardFraction, 0.0);
  EXPECT_EQ(r.inOrderViolations, 0u);
}

}  // namespace
}  // namespace ibadapt
