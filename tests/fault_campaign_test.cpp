//
// Fault-injection campaigns: deterministic timelines, link recovery,
// latency-modeled SM re-sweeps, degraded-mode audits, and the end-to-end
// acceptance run — a scripted campaign failing and recovering >= 10 % of
// the inter-switch links with exactly-once delivery throughout.
//
#include <gtest/gtest.h>

#include <map>

#include "api/simulation.hpp"
#include "fault/fault_audit.hpp"
#include "fault/fault_campaign.hpp"
#include "host/reliable_transport.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"

namespace ibadapt {
namespace {

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

/// Live inter-switch links whose individual removal keeps the graph
/// connected (safe to fail one at a time).
std::vector<std::pair<SwitchId, PortIndex>> nonCriticalLinks(
    const Topology& topo) {
  std::vector<std::pair<SwitchId, PortIndex>> out;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (const auto& [nb, port] : topo.switchNeighbors(sw)) {
      if (sw > nb) continue;
      Topology probe = topo;
      const Peer peer = probe.peer(sw, port);
      probe.removeLink(sw, port);
      if (probe.connectedSwitchGraph()) out.emplace_back(sw, port);
      probe.restoreLink(sw, port, peer.id, peer.port);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// recoverLink (inverse of failLink)
// ---------------------------------------------------------------------------

TEST(RecoverLink, RoundTripRestoresTheExactPortPair) {
  const Topology topo = testing::twoSwitchTopology(2);
  Fabric fabric(topo, FabricParams{});
  const PortIndex port = 2;  // the only inter-switch link: (0,2)-(1,2)
  ASSERT_EQ(topo.peer(0, port).kind, PeerKind::kSwitch);

  fabric.failLink(0, port);
  ASSERT_EQ(fabric.failedLinks().size(), 1u);
  EXPECT_EQ(fabric.managementPeer(0, port).kind, PeerKind::kUnused);
  // Failing the same (now dead) port again is rejected.
  EXPECT_THROW(fabric.failLink(0, port), std::invalid_argument);

  // Recovery may name either endpoint; use the peer side.
  fabric.recoverLink(1, port);
  EXPECT_TRUE(fabric.failedLinks().empty());
  EXPECT_TRUE(fabric.topology().linked(0, 1));
  EXPECT_EQ(fabric.managementPeer(0, port).id, 1);
  EXPECT_EQ(fabric.managementPeer(0, port).port, port);

  // Nothing left to recover; the link can fail again.
  EXPECT_THROW(fabric.recoverLink(0, port), std::invalid_argument);
  fabric.failLink(0, port);
  EXPECT_EQ(fabric.failedLinks().size(), 1u);
}

TEST(RecoverLink, CreditsSurviveAFaultRecoveryCycle) {
  // Credits kept flowing while the link was down, so a drained fabric has
  // full credit on the recovered link in both directions.
  const Topology topo = testing::lineTopology(2);
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();

  testing::ScriptedTraffic traffic;
  for (int i = 0; i < 10; ++i) {
    traffic.add(0, i * 300, /*dst=*/4, 32, /*adaptive=*/false);
  }
  testing::RecordingObserver obs;
  fabric.attachTraffic(&traffic, 1);
  fabric.attachObserver(&obs);
  fabric.start();
  RunLimits limits;
  limits.endTime = 1'500;  // some packets in flight toward switch 2
  fabric.run(limits);

  PortIndex toSw2 = kInvalidPort;
  for (const auto& [nb, port] : fabric.topology().switchNeighbors(1)) {
    if (nb == 2) toSw2 = port;
  }
  ASSERT_NE(toSw2, kInvalidPort);
  fabric.failLink(1, toSw2);
  limits.endTime = 1'000'000;
  fabric.run(limits);  // strand + drop, drain credit returns
  fabric.recoverLink(1, toSw2);
  limits.endTime = 5'000'000;
  fabric.run(limits);

  const AuditReport audit = auditFabric(fabric, /*expectQuiescent=*/true);
  EXPECT_TRUE(audit.ok()) << audit.detail;
  EXPECT_EQ(fabric.outputCredits(1, toSw2, 0),
            fabric.outputCreditsMax(1, toSw2, 0));
}

// ---------------------------------------------------------------------------
// Campaign timeline
// ---------------------------------------------------------------------------

TEST(FaultCampaign, TimelineIsDeterministicInTheSeed) {
  const Topology topo = irregular(16, 4, 78);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);

  FaultCampaignSpec spec;
  spec.mtbfNs = 500'000;
  spec.mttrNs = 200'000;
  spec.seed = 5;
  spec.maxStochasticFaults = 10;
  const FaultCampaign a(fabric, sm, spec);
  const FaultCampaign b(fabric, sm, spec);

  ASSERT_FALSE(a.timeline().empty());
  ASSERT_EQ(a.timeline().size(), b.timeline().size());
  bool sawRecovery = false;
  for (std::size_t i = 0; i < a.timeline().size(); ++i) {
    EXPECT_EQ(a.timeline()[i].at, b.timeline()[i].at);
    EXPECT_EQ(a.timeline()[i].fail, b.timeline()[i].fail);
    EXPECT_EQ(a.timeline()[i].sw, b.timeline()[i].sw);
    EXPECT_EQ(a.timeline()[i].port, b.timeline()[i].port);
    if (i > 0) {
      EXPECT_LE(a.timeline()[i - 1].at, a.timeline()[i].at);
    }
    sawRecovery |= !a.timeline()[i].fail;
  }
  EXPECT_TRUE(sawRecovery) << "MTTR layer produced no repairs";

  spec.seed = 6;
  const FaultCampaign c(fabric, sm, spec);
  ASSERT_FALSE(c.timeline().empty());
  EXPECT_NE(c.timeline().front().at, a.timeline().front().at)
      << "different seeds drew identical first arrival";
}

TEST(FaultCampaign, RejectsBadSpecs) {
  const Topology topo = irregular(8, 4, 79);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);

  FaultCampaignSpec caPort;
  caPort.scripted.push_back(ScriptedFault{1'000, kTimeNever, 0, 0});
  EXPECT_THROW(FaultCampaign(fabric, sm, caPort), std::invalid_argument);

  FaultCampaignSpec backwards;
  backwards.scripted.push_back(ScriptedFault{2'000, 1'000, 0, 4});
  EXPECT_THROW(FaultCampaign(fabric, sm, backwards), std::invalid_argument);

  FaultCampaignSpec negative;
  negative.mtbfNs = -1.0;
  EXPECT_THROW(FaultCampaign(fabric, sm, negative), std::invalid_argument);
}

TEST(FaultCampaign, DisabledSweepLeavesTablesStale) {
  // sweepDelayNs < 0: the fault is never swept around, the degraded window
  // runs to the horizon, and no audit fires.
  const Topology topo = irregular(8, 4, 80);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  const auto safe = nonCriticalLinks(topo);
  ASSERT_FALSE(safe.empty());
  FaultCampaignSpec spec;
  spec.scripted.push_back(
      ScriptedFault{100'000, kTimeNever, safe[0].first, safe[0].second});
  spec.sweepDelayNs = -1;
  FaultCampaign campaign(fabric, sm, spec);

  testing::ScriptedTraffic traffic;  // no packets: topology-only run
  fabric.attachTraffic(&traffic, 1);
  fabric.start();
  RunLimits limits;
  limits.endTime = 1'000'000;
  campaign.run(limits);

  EXPECT_EQ(campaign.stats().faultsInjected, 1);
  EXPECT_EQ(campaign.stats().smSweeps, 0);
  EXPECT_EQ(campaign.stats().timeToRecovery.count(), 0u);
  EXPECT_EQ(campaign.stats().auditsRun, 0);
  EXPECT_EQ(campaign.stats().degradedTimeNs, 1'000'000 - 100'000);
  EXPECT_EQ(fabric.failedLinks().size(), 1u);
}

// ---------------------------------------------------------------------------
// Acceptance: >= 10 % of links fail and recover; exactly-once end to end
// ---------------------------------------------------------------------------

TEST(FaultCampaign, TenPercentOfLinksFailAndRecoverExactlyOnce) {
  const Topology topo = irregular(16, 4, 77);
  const int tenPercent = (topo.numLinks() + 9) / 10;
  const auto safe = nonCriticalLinks(topo);
  ASSERT_GE(static_cast<int>(safe.size()), tenPercent)
      << "topology too fragile for the campaign";

  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();

  // Sequential fail->sweep->recover->sweep cycles, one per chosen link, so
  // connectivity holds throughout and every fault's sweep latency is exact.
  FaultCampaignSpec spec;
  spec.sweepDelayNs = 50'000;
  for (int i = 0; i < tenPercent; ++i) {
    ScriptedFault f;
    f.failAtNs = 200'000 + static_cast<SimTime>(i) * 600'000;
    f.recoverAtNs = f.failAtNs + 300'000;
    f.sw = safe[static_cast<std::size_t>(i)].first;
    f.port = safe[static_cast<std::size_t>(i)].second;
    spec.scripted.push_back(f);
  }
  FaultCampaign campaign(fabric, sm, spec);
  const SimTime lastAction = spec.scripted.back().recoverAtNs + 50'000;

  // Deterministic cross-fabric flows spanning the whole campaign, under the
  // reliable transport: packets stranded on failed links are retransmitted.
  testing::ScriptedTraffic inner;
  const NodeId n = topo.numNodes();
  for (NodeId src = 0; src < n; ++src) {
    const NodeId dst = (src + n / 2) % n;
    for (int i = 0; i < 10; ++i) {
      inner.add(src, src * 37 + static_cast<SimTime>(i) * (lastAction / 10),
                dst, 32, /*adaptive=*/false);
    }
  }
  ReliableTransportSpec rts;
  rts.baseRtoNs = 30'000;
  rts.maxRtoNs = 480'000;
  ReliableTransport rt(inner, n, rts);
  testing::RecordingObserver obs;
  rt.attachObserver(&obs);
  fabric.attachTraffic(&rt, 1);
  fabric.attachObserver(&rt);
  fabric.start();

  RunLimits limits;
  limits.endTime = lastAction + 8'000'000;  // generous retransmit tail
  campaign.run(limits);

  const ResilienceStats& rs = campaign.stats();
  EXPECT_FALSE(fabric.deadlockSuspected());
  EXPECT_EQ(rs.faultsInjected, tenPercent);
  EXPECT_EQ(rs.linksRecovered, tenPercent);
  EXPECT_EQ(rs.smSweeps, 2 * tenPercent);  // one per fault + one per repair
  EXPECT_TRUE(fabric.failedLinks().empty());

  // Per-fault time-to-recovery: cycles never overlap, so every fault was
  // swept exactly sweepDelayNs after it hit.
  ASSERT_EQ(rs.timeToRecovery.count(), static_cast<std::uint64_t>(tenPercent));
  EXPECT_EQ(rs.timeToRecovery.min(), 50'000);
  EXPECT_EQ(rs.timeToRecovery.max(), 50'000);
  EXPECT_EQ(rs.degradedTimeNs, static_cast<SimTime>(tenPercent) * 50'000);

  // Every post-sweep audit passed (escape plane whole, credits in range).
  EXPECT_EQ(rs.auditsRun, 2 * tenPercent);
  EXPECT_TRUE(rs.allAuditsPassed()) << rs.firstAuditFailure;

  // Exactly-once delivery end to end despite the drops.
  EXPECT_EQ(rt.uniqueSent(), static_cast<std::uint64_t>(n) * 10);
  EXPECT_EQ(rt.uniqueDelivered(), rt.uniqueSent());
  EXPECT_EQ(rt.abandoned(), 0u);
  EXPECT_EQ(rt.outstanding(), 0u);
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>, int> seen;
  for (const auto& d : obs.deliveries) ++seen[{d.pkt.src, d.pkt.dst, d.pkt.e2eSeq}];
  EXPECT_EQ(obs.deliveries.size(), static_cast<std::size_t>(n) * 10);
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);

  // The drained fabric holds zero stuck credits.
  const AuditReport quiescent = auditFabric(fabric, /*expectQuiescent=*/true);
  EXPECT_TRUE(quiescent.ok()) << quiescent.detail;

  // Degraded/healthy drop accounting is exhaustive.
  EXPECT_EQ(rs.droppedWhileDegraded + rs.droppedWhileHealthy,
            fabric.counters().dropped);
}

// ---------------------------------------------------------------------------
// API-level determinism
// ---------------------------------------------------------------------------

SimParams stochasticParams() {
  SimParams p;
  p.numSwitches = 8;
  p.linksPerSwitch = 4;
  p.loadBytesPerNsPerNode = 0.02;
  p.warmupPackets = 100;
  p.measurePackets = 1'000'000;  // never reached: run to the horizon
  p.maxSimTimeNs = 3'000'000;
  p.faultMtbfNs = 400'000;
  p.faultMttrNs = 150'000;
  p.faultSeed = 3;
  p.sweepDelayNs = 30'000;
  p.reliableTransport = true;
  return p;
}

TEST(FaultCampaign, SameSeedSameCountersThroughTheApi) {
  const SimParams p = stochasticParams();
  const SimResults a = runSimulation(p);
  const SimResults b = runSimulation(p);

  EXPECT_TRUE(a.faultCampaignRan);
  EXPECT_GT(a.resilience.faultsInjected, 0);
  EXPECT_GT(a.resilience.smSweeps, 0);
  EXPECT_GT(a.resilience.uniqueDelivered, 0u);

  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs);
  EXPECT_EQ(a.resilience.faultsInjected, b.resilience.faultsInjected);
  EXPECT_EQ(a.resilience.linksRecovered, b.resilience.linksRecovered);
  EXPECT_EQ(a.resilience.smSweeps, b.resilience.smSweeps);
  EXPECT_EQ(a.resilience.degradedTimeNs, b.resilience.degradedTimeNs);
  EXPECT_EQ(a.resilience.droppedWhileDegraded,
            b.resilience.droppedWhileDegraded);
  EXPECT_EQ(a.resilience.retransmitsSent, b.resilience.retransmitsSent);
  EXPECT_EQ(a.resilience.duplicatesSuppressed,
            b.resilience.duplicatesSuppressed);
  EXPECT_EQ(a.resilience.uniqueSent, b.resilience.uniqueSent);
  EXPECT_EQ(a.resilience.uniqueDelivered, b.resilience.uniqueDelivered);
  EXPECT_EQ(a.resilience.auditsRun, b.resilience.auditsRun);
  EXPECT_EQ(a.resilience.auditsPassed, b.resilience.auditsPassed);
}

}  // namespace
}  // namespace ibadapt
