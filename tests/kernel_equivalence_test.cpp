#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include <algorithm>

#include "api/simulation.hpp"
#include "api/sweep.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

// The calendar queue replaces the seed's binary heap on the hot path; these
// tests pin the contract that makes that safe: for ANY interleaving of
// pushes and pops the two kernels emit the same event sequence, and a whole
// simulation therefore produces bit-identical results under either.

Event mkEvent(SimTime t, std::uint32_t tag) {
  Event ev{};
  ev.time = t;
  ev.kind = EventKind::kNodeGenerate;
  ev.a = tag;
  return ev;
}

void expectSameEvent(const Event& c, const Event& h, std::size_t step) {
  ASSERT_EQ(c.time, h.time) << "step " << step;
  ASSERT_EQ(c.seq, h.seq) << "step " << step;
  ASSERT_EQ(c.a, h.a) << "step " << step;
}

TEST(KernelEquivalence, RandomizedInterleavingMatchesReferenceHeap) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EventQueue cal(SimKernel::kCalendar);
    EventQueue heap(SimKernel::kLegacyHeap);
    Rng rng(seed);
    SimTime now = 0;
    std::size_t popped = 0;
    for (int step = 0; step < 20000; ++step) {
      const bool doPush = cal.empty() || rng.uniformReal() < 0.55;
      if (doPush) {
        SimTime t;
        const double r = rng.uniformReal();
        if (r < 0.70) {
          // Near future: the fabric's routing/serialization delays.
          t = now + static_cast<SimTime>(rng.uniformIndex(2000));
        } else if (r < 0.85) {
          // Same-timestamp burst companion (exercises FIFO tie-break).
          t = now;
        } else if (r < 0.95) {
          // Beyond the wheel horizon (262 us): overflow heap + migration.
          t = now + 300'000 + static_cast<SimTime>(rng.uniformIndex(2'000'000));
        } else {
          // At or before the last popped time (re-arm edge case).
          t = now > 50 ? now - static_cast<SimTime>(rng.uniformIndex(50)) : now;
        }
        const auto tag = static_cast<std::uint32_t>(step);
        cal.push(mkEvent(t, tag));
        heap.push(mkEvent(t, tag));
      } else {
        expectSameEvent(cal.top(), heap.top(), popped);
        const Event c = cal.pop();
        const Event h = heap.pop();
        expectSameEvent(c, h, popped++);
        // The heap never yields a time earlier than a past-clamped push's
        // original stamp's pop point, so "now" only moves forward.
        if (c.time > now) now = c.time;
      }
      ASSERT_EQ(cal.size(), heap.size());
    }
    while (!cal.empty()) {
      ASSERT_FALSE(heap.empty());
      expectSameEvent(cal.pop(), heap.pop(), popped++);
    }
    EXPECT_TRUE(heap.empty());
  }
}

TEST(KernelEquivalence, SameTimestampBurstIsFifoInBothKernels) {
  EventQueue cal(SimKernel::kCalendar);
  EventQueue heap(SimKernel::kLegacyHeap);
  // A switch arbitration round schedules many events at the same ns.
  for (std::uint32_t i = 0; i < 500; ++i) {
    cal.push(mkEvent(1000, i));
    heap.push(mkEvent(1000, i));
  }
  for (std::uint32_t i = 0; i < 500; ++i) {
    const Event c = cal.pop();
    const Event h = heap.pop();
    EXPECT_EQ(c.a, i);  // strict push order among equal times
    expectSameEvent(c, h, i);
  }
}

TEST(KernelEquivalence, ClearThenReuseMatches) {
  EventQueue cal(SimKernel::kCalendar);
  EventQueue heap(SimKernel::kLegacyHeap);
  // First campaign: drive both wheels deep into the timeline, half-drain.
  for (std::uint32_t i = 0; i < 300; ++i) {
    const SimTime t = static_cast<SimTime>(i) * 977 % 400'000;
    cal.push(mkEvent(t, i));
    heap.push(mkEvent(t, i));
  }
  for (int i = 0; i < 150; ++i) {
    expectSameEvent(cal.pop(), heap.pop(), static_cast<std::size_t>(i));
  }
  cal.clear();
  heap.clear();
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
  // Reuse from t=0 as a fresh simulation would; sequence stamps restart in
  // both kernels, so the merged order must again be identical.
  Rng rng(77);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.uniformIndex(500'000));
    cal.push(mkEvent(t, i));
    heap.push(mkEvent(t, i));
  }
  for (std::size_t i = 0; i < 1000; ++i) {
    expectSameEvent(cal.pop(), heap.pop(), i);
  }
}

TEST(KernelEquivalence, FarFutureEventsMigrateInOrder) {
  EventQueue cal(SimKernel::kCalendar);
  EventQueue heap(SimKernel::kLegacyHeap);
  // Everything far beyond the 262 us wheel horizon, out of order, with
  // collisions — exercises the overflow heap and cohort migration.
  const SimTime base = 10'000'000;
  std::uint32_t tag = 0;
  for (SimTime off : {900'000, 0, 500'000, 500'000, 1, 2'000'000, 0}) {
    cal.push(mkEvent(base + off, tag));
    heap.push(mkEvent(base + off, tag));
    ++tag;
  }
  std::size_t i = 0;
  SimTime prev = 0;
  while (!cal.empty()) {
    const Event c = cal.pop();
    expectSameEvent(c, heap.pop(), i++);
    EXPECT_GE(c.time, prev);
    prev = c.time;
  }
}

SimParams kernelParams(SimKernel k) {
  SimParams p;
  p.topoKind = TopologyKind::kIrregular;
  p.numSwitches = 16;
  p.linksPerSwitch = 4;
  p.nodesPerSwitch = 4;
  p.pattern = TrafficPattern::kUniform;
  p.loadBytesPerNsPerNode = 0.04;
  p.warmupPackets = 500;
  p.measurePackets = 4000;
  p.fabric.kernel = k;
  return p;
}

TEST(KernelEquivalence, SixteenSwitchSimResultsBitIdentical) {
  // The whole point of keeping kLegacyHeap: the overhauled kernel must not
  // change a single decision. Every float compared with ==, not NEAR.
  const SimResults a = runSimulation(kernelParams(SimKernel::kCalendar));
  const SimResults b = runSimulation(kernelParams(SimKernel::kLegacyHeap));
  ASSERT_TRUE(a.measurementComplete);
  ASSERT_TRUE(b.measurementComplete);
  EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs);
  EXPECT_EQ(a.minLatencyNs, b.minLatencyNs);
  EXPECT_EQ(a.maxLatencyNs, b.maxLatencyNs);
  EXPECT_EQ(a.stddevLatencyNs, b.stddevLatencyNs);
  EXPECT_EQ(a.p50LatencyNs, b.p50LatencyNs);
  EXPECT_EQ(a.p95LatencyNs, b.p95LatencyNs);
  EXPECT_EQ(a.p99LatencyNs, b.p99LatencyNs);
  EXPECT_EQ(a.avgLatencyAdaptiveNs, b.avgLatencyAdaptiveNs);
  EXPECT_EQ(a.avgLatencyDeterministicNs, b.avgLatencyDeterministicNs);
  EXPECT_EQ(a.acceptedBytesPerNsPerSwitch, b.acceptedBytesPerNsPerSwitch);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.measured, b.measured);
  EXPECT_EQ(a.kernelEvents, b.kernelEvents);
  EXPECT_EQ(a.avgHops, b.avgHops);
  EXPECT_EQ(a.adaptiveForwardFraction, b.adaptiveForwardFraction);
  EXPECT_EQ(a.escapeForwardFraction, b.escapeForwardFraction);
  EXPECT_EQ(a.maxLinkUtilization, b.maxLinkUtilization);
  EXPECT_EQ(a.meanLinkUtilization, b.meanLinkUtilization);
  EXPECT_EQ(a.inOrderViolations, b.inOrderViolations);
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs);
  EXPECT_GT(a.kernelEvents, 0u);
}

TEST(KernelEquivalence, FaultCampaignWithTransientsBitIdentical) {
  // The robustness stack end to end — stochastic link faults + SM
  // re-sweeps, bit-error corruption, credit-update loss + resync, the
  // reliable transport, and the invariant watchdog — must not cost a
  // single bit of kernel equivalence: every fault-model RNG draw happens
  // in event-handler order, and the resync/check chains are themselves
  // simulator events.
  auto mk = [](SimKernel k) {
    SimParams p = kernelParams(k);
    p.numSwitches = 8;
    p.loadBytesPerNsPerNode = 0.02;
    p.warmupPackets = 200;
    p.measurePackets = 2000;
    p.maxSimTimeNs = 3'000'000;
    p.faultMtbfNs = 400'000;
    p.faultMttrNs = 150'000;
    p.faultSeed = 3;
    p.sweepDelayNs = 30'000;
    p.berPerBit = 2e-5;
    p.creditLossRate = 0.05;
    p.creditResyncPeriodNs = 50'000;
    p.reliableTransport = true;
    p.invariantPolicy = WatchdogPolicy::kRecord;
    p.invariantPeriodNs = 20'000;  // checks inside the short stats budget
    return runSimulation(p);
  };
  const SimResults a = mk(SimKernel::kCalendar);
  const SimResults b = mk(SimKernel::kLegacyHeap);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.kernelEvents, b.kernelEvents);
  EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs);
  EXPECT_EQ(a.e2eLatencyNs, b.e2eLatencyNs);
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs);
  EXPECT_EQ(a.resilience.faultsInjected, b.resilience.faultsInjected);
  EXPECT_EQ(a.resilience.linksRecovered, b.resilience.linksRecovered);
  EXPECT_EQ(a.resilience.smSweeps, b.resilience.smSweeps);
  EXPECT_EQ(a.resilience.packetsCorrupted, b.resilience.packetsCorrupted);
  EXPECT_EQ(a.resilience.crcDrops, b.resilience.crcDrops);
  EXPECT_EQ(a.resilience.silentCorruptions, b.resilience.silentCorruptions);
  EXPECT_EQ(a.resilience.creditUpdatesLost, b.resilience.creditUpdatesLost);
  EXPECT_EQ(a.resilience.creditsLeaked, b.resilience.creditsLeaked);
  EXPECT_EQ(a.resilience.creditsResynced, b.resilience.creditsResynced);
  EXPECT_EQ(a.resilience.retransmitsSent, b.resilience.retransmitsSent);
  EXPECT_EQ(a.resilience.duplicatesSuppressed,
            b.resilience.duplicatesSuppressed);
  EXPECT_EQ(a.resilience.uniqueSent, b.resilience.uniqueSent);
  EXPECT_EQ(a.resilience.uniqueDelivered, b.resilience.uniqueDelivered);
  EXPECT_EQ(a.invariants.checksRun, b.invariants.checksRun);
  EXPECT_EQ(a.invariants.violations(), b.invariants.violations());
  EXPECT_EQ(a.invariants.congestionStalls, b.invariants.congestionStalls);
  // The scenario is only interesting if the fault classes actually fired.
  EXPECT_GT(a.resilience.packetsCorrupted, 0u);
  EXPECT_GT(a.resilience.creditUpdatesLost, 0u);
  EXPECT_GT(a.invariants.checksRun, 0u);
}

TEST(KernelEquivalence, SaturationModeBitIdentical) {
  // Saturation drives the densest event schedule (always-backlogged
  // sources) — the regime where the calendar queue earns its keep.
  auto mk = [](SimKernel k) {
    SimParams p = kernelParams(k);
    p.saturation = true;
    p.warmupPackets = 500;
    p.measurePackets = 3000;
    return runSimulation(p);
  };
  const SimResults a = mk(SimKernel::kCalendar);
  const SimResults b = mk(SimKernel::kLegacyHeap);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.kernelEvents, b.kernelEvents);
  EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs);
  EXPECT_EQ(a.acceptedBytesPerNsPerSwitch, b.acceptedBytesPerNsPerSwitch);
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs);
}

// ---------------------------------------------------------------------------
// Parallel kernel: sharded execution must not change a single bit.
// ---------------------------------------------------------------------------

// Every numeric field of SimResults compared with ==, never NEAR — the
// parallel kernel's claim is bitwise determinism, not statistical agreement.
void expectBitIdentical(const SimResults& a, const SimResults& b,
                        const char* what) {
  EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs) << what;
  EXPECT_EQ(a.minLatencyNs, b.minLatencyNs) << what;
  EXPECT_EQ(a.maxLatencyNs, b.maxLatencyNs) << what;
  EXPECT_EQ(a.stddevLatencyNs, b.stddevLatencyNs) << what;
  EXPECT_EQ(a.p50LatencyNs, b.p50LatencyNs) << what;
  EXPECT_EQ(a.p95LatencyNs, b.p95LatencyNs) << what;
  EXPECT_EQ(a.p99LatencyNs, b.p99LatencyNs) << what;
  EXPECT_EQ(a.avgLatencyAdaptiveNs, b.avgLatencyAdaptiveNs) << what;
  EXPECT_EQ(a.avgLatencyDeterministicNs, b.avgLatencyDeterministicNs) << what;
  EXPECT_EQ(a.acceptedBytesPerNsPerSwitch, b.acceptedBytesPerNsPerSwitch)
      << what;
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.injected, b.injected) << what;
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.measured, b.measured) << what;
  EXPECT_EQ(a.kernelEvents, b.kernelEvents) << what;
  EXPECT_EQ(a.avgHops, b.avgHops) << what;
  EXPECT_EQ(a.adaptiveForwardFraction, b.adaptiveForwardFraction) << what;
  EXPECT_EQ(a.escapeForwardFraction, b.escapeForwardFraction) << what;
  EXPECT_EQ(a.maxLinkUtilization, b.maxLinkUtilization) << what;
  EXPECT_EQ(a.meanLinkUtilization, b.meanLinkUtilization) << what;
  EXPECT_EQ(a.measurementComplete, b.measurementComplete) << what;
  EXPECT_EQ(a.deadlockSuspected, b.deadlockSuspected) << what;
  EXPECT_EQ(a.livePacketLimitHit, b.livePacketLimitHit) << what;
  EXPECT_EQ(a.inOrderViolations, b.inOrderViolations) << what;
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs) << what;
  EXPECT_EQ(a.e2eLatencyNs, b.e2eLatencyNs) << what;
  EXPECT_EQ(a.faultCampaignRan, b.faultCampaignRan) << what;
  EXPECT_EQ(a.resilience.faultsInjected, b.resilience.faultsInjected) << what;
  EXPECT_EQ(a.resilience.linksRecovered, b.resilience.linksRecovered) << what;
  EXPECT_EQ(a.resilience.smSweeps, b.resilience.smSweeps) << what;
  EXPECT_EQ(a.resilience.packetsCorrupted, b.resilience.packetsCorrupted)
      << what;
  EXPECT_EQ(a.resilience.crcDrops, b.resilience.crcDrops) << what;
  EXPECT_EQ(a.resilience.silentCorruptions, b.resilience.silentCorruptions)
      << what;
  EXPECT_EQ(a.resilience.creditUpdatesLost, b.resilience.creditUpdatesLost)
      << what;
  EXPECT_EQ(a.resilience.creditsLeaked, b.resilience.creditsLeaked) << what;
  EXPECT_EQ(a.resilience.creditsResynced, b.resilience.creditsResynced)
      << what;
  EXPECT_EQ(a.resilience.retransmitsSent, b.resilience.retransmitsSent)
      << what;
  EXPECT_EQ(a.resilience.duplicatesSuppressed,
            b.resilience.duplicatesSuppressed)
      << what;
  EXPECT_EQ(a.resilience.uniqueSent, b.resilience.uniqueSent) << what;
  EXPECT_EQ(a.resilience.uniqueDelivered, b.resilience.uniqueDelivered)
      << what;
  EXPECT_EQ(a.invariants.checksRun, b.invariants.checksRun) << what;
  EXPECT_EQ(a.invariants.violations(), b.invariants.violations()) << what;
  EXPECT_EQ(a.invariants.congestionStalls, b.invariants.congestionStalls)
      << what;
}

class ParallelKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelKernelTest, SixteenSwitchBitIdenticalToCalendar) {
  const int threads = GetParam();
  const SimResults ref = runSimulation(kernelParams(SimKernel::kCalendar));
  SimParams p = kernelParams(SimKernel::kParallel);
  p.fabric.threads = threads;
  const SimResults par = runSimulation(p);
  ASSERT_TRUE(ref.measurementComplete);
  EXPECT_EQ(par.threadsUsed, std::min(threads, 8));
  expectBitIdentical(ref, par, "16-switch uniform");
}

TEST_P(ParallelKernelTest, SaturationBitIdenticalToCalendar) {
  const int threads = GetParam();
  auto mk = [&](SimKernel k) {
    SimParams p = kernelParams(k);
    p.saturation = true;
    p.warmupPackets = 500;
    p.measurePackets = 3000;
    if (k == SimKernel::kParallel) p.fabric.threads = threads;
    return runSimulation(p);
  };
  expectBitIdentical(mk(SimKernel::kCalendar), mk(SimKernel::kParallel),
                     "saturation");
}

TEST_P(ParallelKernelTest, FullFaultCampaignBitIdenticalToCalendar) {
  // The hardest case: stochastic link failures + SM re-sweeps (management
  // events between windows), CRC corruption and credit loss (per-lane fault
  // RNGs), leak resync chains, the reliable transport (ack hand-off across
  // the shard/observer split), and the invariant watchdog reading merged
  // state at barriers. Any ordering leak shows up here as a diverged bit.
  const int threads = GetParam();
  auto mk = [&](SimKernel k) {
    SimParams p = kernelParams(k);
    p.numSwitches = 8;
    p.loadBytesPerNsPerNode = 0.02;
    p.warmupPackets = 200;
    p.measurePackets = 2000;
    p.maxSimTimeNs = 3'000'000;
    p.faultMtbfNs = 400'000;
    p.faultMttrNs = 150'000;
    p.faultSeed = 3;
    p.sweepDelayNs = 30'000;
    p.berPerBit = 2e-5;
    p.creditLossRate = 0.05;
    p.creditResyncPeriodNs = 50'000;
    p.reliableTransport = true;
    p.invariantPolicy = WatchdogPolicy::kRecord;
    p.invariantPeriodNs = 20'000;
    if (k == SimKernel::kParallel) p.fabric.threads = threads;
    return runSimulation(p);
  };
  const SimResults ref = mk(SimKernel::kCalendar);
  const SimResults par = mk(SimKernel::kParallel);
  expectBitIdentical(ref, par, "fault campaign");
  EXPECT_GT(ref.resilience.packetsCorrupted, 0u);
  EXPECT_GT(ref.resilience.creditUpdatesLost, 0u);
  EXPECT_GT(ref.invariants.checksRun, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelKernelTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelKernel, SweepResultsIndependentOfWorkerCount) {
  // runSweep distributes simulations over a pool; neither the pool size nor
  // the in-simulation shard count may leak into any result.
  std::vector<SimParams> batch;
  for (int t = 0; t < 3; ++t) {
    SimParams p = kernelParams(SimKernel::kParallel);
    p.topoSeed = static_cast<std::uint64_t>(t + 1);
    p.fabric.threads = 4;
    p.warmupPackets = 200;
    p.measurePackets = 1500;
    batch.push_back(p);
  }
  const std::vector<SimResults> serial = runSweep(batch, 1);
  const std::vector<SimResults> parallel = runSweep(batch, 0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expectBitIdentical(serial[i], parallel[i], "sweep case");
  }
}

}  // namespace
}  // namespace ibadapt
