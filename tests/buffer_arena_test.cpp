#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "core/vl_buffer.hpp"
#include "util/buffer_arena.hpp"

namespace ibadapt {
namespace {

TEST(SlabArena, CarvesDisjointSlicesFromOneSlab) {
  SlabArena<int> arena;
  arena.reserve(10);
  EXPECT_EQ(arena.capacity(), 10u);
  EXPECT_EQ(arena.used(), 0u);

  int* a = arena.allocate(4);
  int* b = arena.allocate(6);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b, a + 4);  // bump-pointer: contiguous, in order
  EXPECT_EQ(arena.used(), 10u);
  EXPECT_TRUE(arena.contains(a));
  EXPECT_TRUE(arena.contains(b + 5));

  // Slots are value-initialized.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a[i], 0);
}

TEST(SlabArena, ZeroCountAllocationIsNull) {
  SlabArena<int> arena;
  arena.reserve(4);
  EXPECT_EQ(arena.allocate(0), nullptr);
  EXPECT_EQ(arena.used(), 0u);
}

TEST(SlabArena, OverflowIsALogicError) {
  SlabArena<int> arena;
  arena.reserve(4);
  (void)arena.allocate(3);
  EXPECT_THROW(arena.allocate(2), std::logic_error);
  // The failed carve must not advance the cursor.
  EXPECT_EQ(arena.used(), 3u);
  EXPECT_NO_THROW(arena.allocate(1));
}

TEST(SlabArena, EmptyArenaRejectsEverything) {
  SlabArena<int> arena;
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_FALSE(arena.contains(nullptr));
  EXPECT_THROW(arena.allocate(1), std::logic_error);
}

TEST(SlabArena, MoveTransfersOwnership) {
  SlabArena<int> a;
  a.reserve(8);
  int* p = a.allocate(2);
  p[0] = 42;
  SlabArena<int> b = std::move(a);
  EXPECT_EQ(b.capacity(), 8u);
  EXPECT_EQ(b.used(), 2u);
  EXPECT_TRUE(b.contains(p));
  EXPECT_EQ(p[0], 42);
}

BufferedPacket mkPacket(std::uint32_t id, int credits) {
  BufferedPacket bp;
  bp.packet = id;
  bp.credits = credits;
  RouteOptions o;
  o.escapePort = 3;
  bp.options = o;
  return bp;
}

TEST(VlBufferArena, BoundBufferUsesArenaSlots) {
  SlabArena<BufferedPacket> arena;
  arena.reserve(16);

  VlBuffer buf(/*capacityCredits=*/8, /*escapeReserveCredits=*/2);
  buf.bind(arena.allocate(static_cast<std::size_t>(buf.capacityCredits())));
  ASSERT_TRUE(buf.bound());

  buf.push(mkPacket(1, 3));
  buf.push(mkPacket(2, 2));
  EXPECT_EQ(buf.size(), 2);
  EXPECT_EQ(buf.occupiedCredits(), 5);
  EXPECT_TRUE(arena.contains(&buf.at(0)));
  EXPECT_EQ(buf.at(0).packet, 1u);
  EXPECT_EQ(buf.at(1).packet, 2u);

  buf.remove(0);
  EXPECT_EQ(buf.size(), 1);
  EXPECT_EQ(buf.at(0).packet, 2u);
}

TEST(VlBufferArena, UnboundBufferFallsBackToOwnStorage) {
  // Standalone usage (unit tests, tools) must keep working without an arena.
  VlBuffer buf(4, 1);
  EXPECT_FALSE(buf.bound());
  buf.push(mkPacket(9, 2));
  EXPECT_EQ(buf.size(), 1);
  EXPECT_EQ(buf.at(0).packet, 9u);
}

TEST(VlBufferArena, ClearKeepsBinding) {
  SlabArena<BufferedPacket> arena;
  arena.reserve(8);
  VlBuffer buf(8, 2);
  BufferedPacket* slice =
      arena.allocate(static_cast<std::size_t>(buf.capacityCredits()));
  buf.bind(slice);

  buf.push(mkPacket(1, 4));
  buf.push(mkPacket(2, 4));
  EXPECT_EQ(buf.freeCredits(), 0);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.occupiedCredits(), 0);
  EXPECT_TRUE(buf.bound());

  // Reusable after the wipe, same slice.
  buf.push(mkPacket(3, 8));
  EXPECT_EQ(&buf.at(0), slice);
  EXPECT_EQ(buf.at(0).packet, 3u);
}

TEST(VlBufferArena, RebindAfterUseIsRejected) {
  SlabArena<BufferedPacket> arena;
  arena.reserve(8);
  VlBuffer buf(4, 1);
  buf.bind(arena.allocate(4));
  buf.push(mkPacket(1, 1));
  EXPECT_THROW(buf.bind(arena.allocate(4)), std::logic_error);
}

TEST(PackedRouteOptionsTest, RoundTripsFromRouteOptions) {
  RouteOptions o;
  o.adaptiveRequested = true;
  o.escapePort = 200;
  o.numAdaptive = 3;
  o.adaptivePorts = {7, 120, 255};
  const PackedRouteOptions p = o;
  EXPECT_TRUE(p.valid());
  EXPECT_TRUE(p.adaptiveRequested);
  EXPECT_EQ(p.escapePort, 200);
  EXPECT_EQ(p.numAdaptive, 3);
  EXPECT_EQ(p.adaptivePorts[0], 7);
  EXPECT_EQ(p.adaptivePorts[1], 120);
  EXPECT_EQ(p.adaptivePorts[2], 255);

  // The invalid sentinel survives the narrowing through sign extension.
  const PackedRouteOptions unset = RouteOptions{};
  EXPECT_FALSE(unset.valid());
  EXPECT_EQ(unset.escapePort, kInvalidPort);
}

}  // namespace
}  // namespace ibadapt
