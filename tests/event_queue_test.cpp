#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace ibadapt {
namespace {

Event at(SimTime t, std::uint32_t tag = 0) {
  Event e;
  e.time = t;
  e.kind = EventKind::kArbitrate;
  e.a = tag;
  return e;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(at(30));
  q.push(at(10));
  q.push(at(20));
  EXPECT_EQ(q.pop().time, 10);
  EXPECT_EQ(q.pop().time, 20);
  EXPECT_EQ(q.pop().time, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) q.push(at(5, i));
  for (std::uint32_t i = 0; i < 100; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, 5);
    EXPECT_EQ(e.a, i);  // insertion order preserved
  }
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(at(10, 1));
  q.push(at(5, 2));
  EXPECT_EQ(q.pop().a, 2u);
  q.push(at(7, 3));
  q.push(at(6, 4));
  EXPECT_EQ(q.pop().a, 4u);
  EXPECT_EQ(q.pop().a, 3u);
  EXPECT_EQ(q.pop().a, 1u);
}

TEST(EventQueue, SizeAndClear) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(at(1));
  q.push(at(2));
  EXPECT_EQ(q.size(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pushedTotal(), 0u);
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue q;
  q.push(at(9, 7));
  EXPECT_EQ(q.top().a, 7u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventPacking, PortVlRoundTrip) {
  for (PortIndex p : {0, 1, 9, 200}) {
    for (VlIndex v : {0, 1, 14}) {
      const auto w = packPortVl(p, v);
      EXPECT_EQ(unpackPort(w), p);
      EXPECT_EQ(unpackVl(w), v);
    }
  }
}

TEST(EventQueue, LargeVolumeOrdering) {
  EventQueue q;
  // Pseudo-random times, verify global ordering on drain.
  std::uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    q.push(at(static_cast<SimTime>(state % 1000)));
  }
  SimTime last = -1;
  while (!q.empty()) {
    const SimTime t = q.pop().time;
    EXPECT_GE(t, last);
    last = t;
  }
}

}  // namespace
}  // namespace ibadapt
