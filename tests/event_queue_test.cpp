#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "sim/event_queue.hpp"

namespace ibadapt {
namespace {

Event at(SimTime t, std::uint32_t tag = 0) {
  Event e;
  e.time = t;
  e.kind = EventKind::kArbitrate;
  e.a = tag;
  return e;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(at(30));
  q.push(at(10));
  q.push(at(20));
  EXPECT_EQ(q.pop().time, 10);
  EXPECT_EQ(q.pop().time, 20);
  EXPECT_EQ(q.pop().time, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) q.push(at(5, i));
  for (std::uint32_t i = 0; i < 100; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, 5);
    EXPECT_EQ(e.a, i);  // insertion order preserved
  }
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(at(10, 1));
  q.push(at(5, 2));
  EXPECT_EQ(q.pop().a, 2u);
  q.push(at(7, 3));
  q.push(at(6, 4));
  EXPECT_EQ(q.pop().a, 4u);
  EXPECT_EQ(q.pop().a, 3u);
  EXPECT_EQ(q.pop().a, 1u);
}

TEST(EventQueue, SizeAndClear) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(at(1));
  q.push(at(2));
  EXPECT_EQ(q.size(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pushedTotal(), 0u);
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue q;
  q.push(at(9, 7));
  EXPECT_EQ(q.top().a, 7u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventPacking, PortVlRoundTrip) {
  for (PortIndex p : {0, 1, 9, 200}) {
    for (VlIndex v : {0, 1, 14}) {
      const auto w = packPortVl(p, v);
      EXPECT_EQ(unpackPort(w), p);
      EXPECT_EQ(unpackVl(w), v);
    }
  }
}

TEST(EventQueue, LargeVolumeOrdering) {
  EventQueue q;
  // Pseudo-random times, verify global ordering on drain.
  std::uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    q.push(at(static_cast<SimTime>(state % 1000)));
  }
  SimTime last = -1;
  while (!q.empty()) {
    const SimTime t = q.pop().time;
    EXPECT_GE(t, last);
    last = t;
  }
}

// The day shift is a performance knob, never a correctness knob: every value
// in [kMinDayShift, kMaxDayShift] must produce the exact pop sequence of the
// reference heap. Exercise both pathological extremes — 1 ns buckets (every
// event its own day, cursor scans many empty days) and ~1 ms buckets (whole
// run in one day, bucket degenerates to a linear scan) — with interleaved
// push/pop so the cursor-day and overflow paths both run.
class EventQueueDayShift : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueDayShift, PathologicalBucketWidthsPreserveOrder) {
  EventQueue q(SimKernel::kCalendar, GetParam());
  EventQueue ref(SimKernel::kLegacyHeap);
  ASSERT_EQ(q.dayShift(), GetParam());

  std::uint64_t state = 987654321;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  };
  SimTime now = 0;
  std::uint32_t tag = 0;
  for (int round = 0; round < 400; ++round) {
    // A burst of pushes at and ahead of `now`, including same-time cohorts.
    const int burst = 1 + static_cast<int>(next() % 8);
    for (int i = 0; i < burst; ++i) {
      const SimTime t = now + static_cast<SimTime>(next() % 5000);
      q.push(at(t, tag));
      ref.push(at(t, tag));
      ++tag;
    }
    // Drain a few and compare against the reference heap, event for event.
    const int drain = static_cast<int>(next() % 4);
    for (int i = 0; i < drain && !q.empty(); ++i) {
      const Event got = q.pop();
      const Event want = ref.pop();
      ASSERT_EQ(got.time, want.time);
      ASSERT_EQ(got.a, want.a);
      now = got.time;
    }
  }
  while (!q.empty()) {
    const Event got = q.pop();
    const Event want = ref.pop();
    ASSERT_EQ(got.time, want.time);
    ASSERT_EQ(got.a, want.a);
  }
  EXPECT_TRUE(ref.empty());
}

INSTANTIATE_TEST_SUITE_P(BucketWidths, EventQueueDayShift,
                         ::testing::Values(EventQueue::kMinDayShift,
                                           EventQueue::kMaxDayShift,
                                           EventQueue::kDefaultDayShift));

// The wheel size is the second runtime-geometry knob; like the day shift it
// may only tune constants. Drive every (dayShift, bucketShift) corner with
// event densities matching a 1024-switch shard — large same-time cohorts
// and deep buckets — and demand the exact pop sequence of the reference
// heap throughout.
class EventQueueGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EventQueueGeometry, DenseTrafficPreservesOrderForAnyWheel) {
  const auto [dayShift, bucketShift] = GetParam();
  EventQueue q(SimKernel::kCalendar, dayShift, bucketShift);
  EventQueue ref(SimKernel::kLegacyHeap);
  ASSERT_EQ(q.dayShift(), dayShift);
  ASSERT_EQ(q.bucketShift(), bucketShift);
  ASSERT_EQ(q.numBuckets(), std::size_t{1} << bucketShift);

  std::uint64_t state = 24680;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  };
  SimTime now = 0;
  std::uint32_t tag = 0;
  for (int round = 0; round < 300; ++round) {
    // 1024-switch densities: bursts of up to 64 events, most at identical
    // or near-identical timestamps (a shard's per-epoch arbitration wave),
    // a few flung far beyond any wheel horizon (watchdog-style).
    const int burst = 8 + static_cast<int>(next() % 57);
    for (int i = 0; i < burst; ++i) {
      SimTime t = now + static_cast<SimTime>(next() % 700);
      if (next() % 16 == 0) t = now + 1'000'000 + static_cast<SimTime>(
                                      next() % 100'000);
      q.push(at(t, tag));
      ref.push(at(t, tag));
      ++tag;
    }
    const int drain = static_cast<int>(next() % 48);
    for (int i = 0; i < drain && !q.empty(); ++i) {
      const Event got = q.pop();
      const Event want = ref.pop();
      ASSERT_EQ(got.time, want.time);
      ASSERT_EQ(got.a, want.a);
      now = got.time;
    }
  }
  while (!q.empty()) {
    const Event got = q.pop();
    const Event want = ref.pop();
    ASSERT_EQ(got.time, want.time);
    ASSERT_EQ(got.a, want.a);
  }
  EXPECT_TRUE(ref.empty());
}

INSTANTIATE_TEST_SUITE_P(
    WheelGeometries, EventQueueGeometry,
    ::testing::Combine(
        ::testing::Values(EventQueue::kMinDayShift, EventQueue::kDefaultDayShift,
                          EventQueue::kMaxDayShift),
        ::testing::Values(EventQueue::kMinBucketShift,
                          EventQueue::kDefaultBucketShift,
                          EventQueue::kMaxBucketShift)));

TEST(EventQueue, RejectsIllegalGeometry) {
  EXPECT_THROW(EventQueue(SimKernel::kCalendar, EventQueue::kMinDayShift - 1),
               std::invalid_argument);
  EXPECT_THROW(EventQueue(SimKernel::kCalendar, EventQueue::kMaxDayShift + 1),
               std::invalid_argument);
  EXPECT_THROW(EventQueue(SimKernel::kCalendar, EventQueue::kDefaultDayShift,
                          EventQueue::kMinBucketShift - 1),
               std::invalid_argument);
  EXPECT_THROW(EventQueue(SimKernel::kCalendar, EventQueue::kDefaultDayShift,
                          EventQueue::kMaxBucketShift + 1),
               std::invalid_argument);
}

TEST(EventQueue, SuggestBucketShiftTracksLivePopulation) {
  // Roughly one bucket per concurrently live event, clamped to the legal
  // wheel sizes: tiny fixtures get the minimum wheel, 1024-switch shards
  // get a proportionally larger one, absurd populations hit the cap.
  EXPECT_EQ(EventQueue::suggestBucketShift(0), EventQueue::kMinBucketShift);
  EXPECT_EQ(EventQueue::suggestBucketShift(1), EventQueue::kMinBucketShift);
  EXPECT_EQ(EventQueue::suggestBucketShift(64), EventQueue::kMinBucketShift);
  EXPECT_EQ(EventQueue::suggestBucketShift(65), 7);
  EXPECT_EQ(EventQueue::suggestBucketShift(2048), 11);
  EXPECT_EQ(EventQueue::suggestBucketShift(std::size_t{1} << 16), 16);
  EXPECT_EQ(EventQueue::suggestBucketShift(std::size_t{1} << 30),
            EventQueue::kMaxBucketShift);
  // Monotone, and always constructible.
  int prev = EventQueue::kMinBucketShift;
  for (std::size_t n = 1; n <= (std::size_t{1} << 20); n *= 2) {
    const int s = EventQueue::suggestBucketShift(n);
    EXPECT_GE(s, prev);
    EXPECT_NO_THROW(EventQueue(SimKernel::kCalendar,
                               EventQueue::kDefaultDayShift, s));
    prev = s;
  }
}

TEST(EventQueue, DensityAwareDayShiftNarrowsDaysOnDenseFabrics) {
  // Unknown density falls back to the horizon-only rule.
  for (SimTime h : {SimTime{1}, SimTime{256}, SimTime{1} << 20}) {
    EXPECT_EQ(EventQueue::suggestDayShift(h, 0.0),
              EventQueue::suggestDayShift(h));
    EXPECT_EQ(EventQueue::suggestDayShift(h, -1.0),
              EventQueue::suggestDayShift(h));
  }
  // A sparse queue keeps the horizon-sized day...
  EXPECT_EQ(EventQueue::suggestDayShift(256, 1e-9),
            EventQueue::suggestDayShift(256));
  // ... a dense one narrows it so a day holds only a handful of events,
  // and the density cap never *widens* a day past the horizon rule.
  EXPECT_LT(EventQueue::suggestDayShift(256, 10.0),
            EventQueue::suggestDayShift(256));
  EXPECT_EQ(EventQueue::suggestDayShift(256, 1000.0),
            EventQueue::kMinDayShift);
  for (SimTime h : {SimTime{16}, SimTime{4096}, SimTime{1} << 18}) {
    for (double d : {1e-6, 1e-3, 0.1, 1.0, 100.0}) {
      const int s = EventQueue::suggestDayShift(h, d);
      EXPECT_GE(s, EventQueue::kMinDayShift);
      EXPECT_LE(s, EventQueue::suggestDayShift(h));
    }
  }
}

TEST(EventQueue, SuggestDayShiftTracksHorizon) {
  // Degenerate horizons fall back to the default.
  EXPECT_EQ(EventQueue::suggestDayShift(0), EventQueue::kDefaultDayShift);
  EXPECT_EQ(EventQueue::suggestDayShift(-5), EventQueue::kDefaultDayShift);
  // A day holds roughly one scheduling horizon: 2^shift >= horizon/2.
  EXPECT_EQ(EventQueue::suggestDayShift(1), EventQueue::kMinDayShift);
  EXPECT_EQ(EventQueue::suggestDayShift(256), 7);
  // Monotone in the horizon, and clamped to the legal range.
  int prev = EventQueue::kMinDayShift;
  for (SimTime h = 1; h <= (SimTime{1} << 24); h *= 2) {
    const int s = EventQueue::suggestDayShift(h);
    EXPECT_GE(s, prev);
    EXPECT_GE(s, EventQueue::kMinDayShift);
    EXPECT_LE(s, EventQueue::kMaxDayShift);
    prev = s;
  }
  EXPECT_EQ(prev, EventQueue::kMaxDayShift);
}

}  // namespace
}  // namespace ibadapt
