//
// Congestion management (src/congestion): switch-side hysteresis detection
// with FECN marking, destination echo over the transport ack path, and
// source-side AIMD injection throttling — unit math, generator properties,
// the full loop end to end, watchdog classification, and bit-identity of
// the whole mechanism across kernels and thread counts.
//
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/simulation.hpp"
#include "congestion/congestion.hpp"
#include "congestion/throttle.hpp"
#include "traffic/synthetic.hpp"

namespace ibadapt {
namespace {

// ---- spec validation ------------------------------------------------------

TEST(CongestionSpec, RejectsBadHysteresisFractions) {
  CongestionDetectSpec s;
  s.enterFreeFraction = 0.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = CongestionDetectSpec{};
  s.enterFreeFraction = 0.6;
  s.exitFreeFraction = 0.5;  // exit must sit above enter
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = CongestionDetectSpec{};
  s.exitFreeFraction = 1.5;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  EXPECT_NO_THROW(CongestionDetectSpec{}.validate());
}

TEST(CongestionSpec, ThrottleRejectsBadKnobs) {
  ThrottleSpec t;
  t.mdFactor = 1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = ThrottleSpec{};
  t.minRateFactor = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = ThrottleSpec{};
  t.aiStep = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = ThrottleSpec{};
  t.recoveryPeriodNs = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  EXPECT_NO_THROW(ThrottleSpec{}.validate());
}

// ---- FlowThrottle unit math ----------------------------------------------

TEST(FlowThrottle, AimdDecreaseGapAndRecovery) {
  ThrottleSpec spec;
  spec.enabled = true;
  spec.mdFactor = 0.5;  // pinned: the arithmetic below depends on these
  spec.aiStep = 0.05;
  spec.recoveryPeriodNs = 20'000;
  spec.minCnpGapNs = 10'000;
  FlowThrottle t(spec);

  // Untracked flows pay nothing and record nothing.
  EXPECT_EQ(t.planSend(1, 64, 100), 100);
  EXPECT_EQ(t.activeFlows(), 0u);
  EXPECT_DOUBLE_EQ(t.rateFactor(1, 100), 1.0);

  // First notification halves the rate.
  t.onCongestionNotice(1, 1'000);
  EXPECT_EQ(t.cnpsReceived(), 1u);
  EXPECT_EQ(t.rateDecreases(), 1u);
  EXPECT_DOUBLE_EQ(t.rateFactor(1, 1'000), 0.5);

  // A second notice inside minCnpGapNs is absorbed (one episode).
  t.onCongestionNotice(1, 5'000);
  EXPECT_EQ(t.cnpsReceived(), 2u);
  EXPECT_EQ(t.rateDecreases(), 1u);

  // Past the gap it decreases again: 0.5 -> 0.25.
  t.onCongestionNotice(1, 12'000);
  EXPECT_EQ(t.rateDecreases(), 2u);
  EXPECT_DOUBLE_EQ(t.rateFactor(1, 12'000), 0.25);

  // Pacing: 64 B at 4 ns/B is 256 ns on the wire; at rate 0.25 the gap is
  // 1024 ns. The first send goes now, the second queues behind it.
  EXPECT_EQ(t.planSend(1, 64, 20'000), 20'000);
  EXPECT_EQ(t.planSend(1, 64, 20'000), 21'024);

  // Other flows from the same source are untouched.
  EXPECT_EQ(t.planSend(2, 64, 20'000), 20'000);
  EXPECT_DOUBLE_EQ(t.rateFactor(2, 20'000), 1.0);

  // Additive recovery: 0.25 + k * 0.05 reaches 1.0 after 15 periods from
  // the last decrease; once recovered (and the pacing debt drained) the
  // entry disappears and sends are free again.
  const SimTime later = 12'000 + 16 * spec.recoveryPeriodNs;
  EXPECT_DOUBLE_EQ(t.rateFactor(1, later), 1.0);
  EXPECT_EQ(t.activeFlows(), 0u);
  EXPECT_EQ(t.planSend(1, 64, later), later);
}

TEST(FlowThrottle, FloorHoldsAndDisabledIsFree) {
  ThrottleSpec spec;
  spec.enabled = true;
  spec.minCnpGapNs = 0;  // every notice decreases
  FlowThrottle t(spec);
  for (int i = 0; i < 20; ++i) t.onCongestionNotice(3, 1'000 + i);
  EXPECT_GE(t.rateFactor(3, 1'020), spec.minRateFactor);

  FlowThrottle off{};  // default spec: disabled
  off.onCongestionNotice(1, 100);
  EXPECT_EQ(off.cnpsReceived(), 1u);  // counted for observability
  EXPECT_EQ(off.planSend(1, 4096, 200), 200);
  EXPECT_EQ(off.activeFlows(), 0u);
}

// ---- hotspot-workload generators -----------------------------------------

TEST(TrafficGen, IncastVictimSilentAndBurstsEpochClocked) {
  TrafficSpec ts;
  ts.pattern = TrafficPattern::kIncast;
  ts.numNodes = 8;
  ts.hotspotNode = 3;
  ts.incastBurstPackets = 4;
  ts.incastPeriodNs = 10'000;
  ts.loadBytesPerNsPerNode = 0.05;
  SyntheticTraffic gen(ts, 42);
  Rng rng(7);

  EXPECT_EQ(gen.firstGenTime(3, rng), kTimeNever);  // the victim never fires
  ASSERT_EQ(gen.firstGenTime(0, rng), 0);           // senders open at epoch 0

  // One sender: burst of 4 back to back, then sleep to the epoch boundary.
  SimTime now = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(gen.makePacket(0, rng).dst, 3);
    now = gen.nextGenTime(0, now, rng);
    EXPECT_EQ(now, i + 1);
  }
  EXPECT_EQ(gen.makePacket(0, rng).dst, 3);
  now = gen.nextGenTime(0, now, rng);
  EXPECT_EQ(now, 10'000);  // next epoch

  // Saturation mode has no epoch clock to honour.
  TrafficSpec bad = ts;
  bad.saturation = true;
  EXPECT_THROW(SyntheticTraffic(bad, 1), std::invalid_argument);
}

TEST(TrafficGen, PermStormPermutationsAreDerangementsAndRotate) {
  TrafficSpec ts;
  ts.pattern = TrafficPattern::kPermStorm;
  ts.numNodes = 16;
  ts.stormEpochs = 3;
  ts.stormPeriodNs = 1'000;
  ts.loadBytesPerNsPerNode = 0.05;
  SyntheticTraffic gen(ts, 5);
  Rng rng(11);

  // Walk each node through many Poisson wakes. The active permutation is a
  // function of the wake time the generator recorded, so epochs are read
  // off the returned wake: per (epoch, src) the destination must be stable,
  // never the source itself, and injective within each epoch.
  std::map<std::pair<std::size_t, NodeId>, NodeId> observed;
  for (NodeId src = 0; src < 16; ++src) {
    SimTime wake = gen.firstGenTime(src, rng);
    for (int i = 0; i < 60; ++i) {
      const auto epoch = static_cast<std::size_t>((wake / 1'000) % 3);
      const NodeId d = gen.makePacket(src, rng).dst;
      EXPECT_NE(d, src);  // fixed-point free
      const auto [it, fresh] = observed.try_emplace({epoch, src}, d);
      if (!fresh) {
        EXPECT_EQ(it->second, d);  // stable within the epoch
      }
      wake = gen.nextGenTime(src, wake, rng);
    }
  }
  std::vector<std::set<NodeId>> srcs(3), dsts(3);
  for (const auto& [key, d] : observed) {
    srcs[key.first].insert(key.second);
    dsts[key.first].insert(d);
  }
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_GT(srcs[e].size(), 0u) << "epoch " << e << " never observed";
    // Injective over the observed sources => restriction of a bijection.
    EXPECT_EQ(dsts[e].size(), srcs[e].size()) << "epoch " << e;
  }
}

// ---- the full loop, end to end -------------------------------------------

SimParams hotspotParams() {
  SimParams p;
  p.numSwitches = 8;
  p.linksPerSwitch = 4;
  p.nodesPerSwitch = 4;
  p.pattern = TrafficPattern::kHotspot;
  p.hotspotFraction = 0.5;
  p.hotspotNode = 0;
  p.loadBytesPerNsPerNode = 0.02;
  p.packetBytes = 128;
  p.warmupPackets = 500;
  p.measurePackets = 6'000;
  p.maxSimTimeNs = 80'000'000;
  p.congestionControl = true;
  return p;
}

TEST(CongestionLoop, HotspotMarksNotifiesAndThrottles) {
  const SimResults r = runSimulation(hotspotParams());
  EXPECT_TRUE(r.measurementComplete) << r.summary();
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_EQ(r.invariants.violations(), 0u) << r.invariants.summary();

  // Every stage of the loop observably fired: ports crossed the hysteresis
  // threshold, packets were marked, destinations echoed, sources decreased
  // and paced.
  EXPECT_GT(r.congestion.congOnsets, 0u);
  EXPECT_GT(r.congestion.congestedPortNs, 0u);
  EXPECT_GT(r.congestion.fecnMarked, 0u);
  EXPECT_GT(r.congestion.cnpsReceived, 0u);
  EXPECT_GT(r.congestion.rateDecreases, 0u);
  EXPECT_GT(r.congestion.packetsThrottled, 0u);

  // Exactly-once transport underneath is intact (the run stops at the
  // measurement budget, so packets still in flight or held are expected;
  // the chaos suite covers fully-drained accounting).
  EXPECT_GT(r.resilience.uniqueDelivered, 0u);
  EXPECT_LE(r.resilience.uniqueDelivered, r.resilience.uniqueSent);
  EXPECT_EQ(r.inOrderViolations, 0u);
}

TEST(CongestionLoop, OffMeansNoMarksAndNoCost) {
  SimParams p = hotspotParams();
  p.congestionControl = false;
  p.reliableTransport = true;  // same transport path, CC disarmed
  const SimResults r = runSimulation(p);
  EXPECT_TRUE(r.measurementComplete);
  EXPECT_EQ(r.congestion.fecnMarked, 0u);
  EXPECT_EQ(r.congestion.cnpsReceived, 0u);
  EXPECT_EQ(r.congestion.packetsThrottled, 0u);
  EXPECT_EQ(r.congestion.heldAtEnd, 0u);
}

TEST(CongestionLoop, SaturationModeRejected) {
  SimParams p = hotspotParams();
  p.saturation = true;
  EXPECT_THROW(runSimulation(p), std::invalid_argument);
}

TEST(CongestionLoop, MessagePercentilesSurfaced) {
  const SimResults r = runSimulation(hotspotParams());
  // Unsegmented traffic: the message distribution degenerates to packets.
  EXPECT_GT(r.messagesMeasured, 0u);
  EXPECT_GT(r.msgP50LatencyNs, 0.0);
  EXPECT_LE(r.msgP50LatencyNs, r.msgP99LatencyNs);
  EXPECT_LE(r.msgP99LatencyNs, r.msgP999LatencyNs);
  EXPECT_GT(r.p999LatencyNs, 0.0);
  EXPECT_LE(r.p99LatencyNs, r.p999LatencyNs);
}

TEST(CongestionLoop, WatchdogTellsThrottlingFromDeadlock) {
  // Incast at a single victim with an aggressive throttle: sources spend
  // long stretches holding packets back. The watchdog must classify those
  // observations as throttle idleness — and flag nothing.
  SimParams p;
  p.numSwitches = 8;
  p.nodesPerSwitch = 4;
  p.pattern = TrafficPattern::kIncast;
  p.hotspotNode = 0;
  p.incastBurstPackets = 12;
  p.incastPeriodNs = 40'000;
  p.loadBytesPerNsPerNode = 0.02;
  p.packetBytes = 256;
  p.warmupPackets = 200;
  p.measurePackets = 3'000;
  p.maxSimTimeNs = 120'000'000;
  p.congestionControl = true;
  p.transport.throttle.mdFactor = 0.25;
  p.transport.throttle.recoveryPeriodNs = 80'000;
  p.invariantPeriodNs = 50'000;
  const SimResults r = runSimulation(p);
  EXPECT_TRUE(r.measurementComplete) << r.summary();
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_EQ(r.invariants.violations(), 0u) << r.invariants.summary();
  EXPECT_GT(r.congestion.packetsThrottled, 0u);
  EXPECT_GT(r.invariants.throttleIdleObservations, 0u);
}

// ---- determinism: bit-identity across kernels and thread counts ----------

void expectSameResults(const SimResults& a, const SimResults& b,
                       const std::string& what) {
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.kernelEvents, b.kernelEvents) << what;
  EXPECT_EQ(a.measured, b.measured) << what;
  EXPECT_DOUBLE_EQ(a.avgLatencyNs, b.avgLatencyNs) << what;
  EXPECT_DOUBLE_EQ(a.p99LatencyNs, b.p99LatencyNs) << what;
  EXPECT_DOUBLE_EQ(a.acceptedBytesPerNsPerSwitch,
                   b.acceptedBytesPerNsPerSwitch)
      << what;
  EXPECT_EQ(a.congestion.fecnMarked, b.congestion.fecnMarked) << what;
  EXPECT_EQ(a.congestion.congOnsets, b.congestion.congOnsets) << what;
  EXPECT_EQ(a.congestion.cnpsReceived, b.congestion.cnpsReceived) << what;
  EXPECT_EQ(a.congestion.rateDecreases, b.congestion.rateDecreases) << what;
  EXPECT_EQ(a.congestion.packetsThrottled, b.congestion.packetsThrottled)
      << what;
  EXPECT_EQ(a.resilience.uniqueDelivered, b.resilience.uniqueDelivered)
      << what;
}

TEST(CongestionDeterminism, BitIdenticalAcrossKernelsAndThreads) {
  SimParams p = hotspotParams();
  p.measurePackets = 3'000;
  p.fabric.kernel = SimKernel::kCalendar;
  const SimResults ref = runSimulation(p);
  EXPECT_GT(ref.congestion.fecnMarked, 0u);

  p.fabric.kernel = SimKernel::kLegacyHeap;
  expectSameResults(ref, runSimulation(p), "legacy-heap");

  p.fabric.kernel = SimKernel::kParallel;
  for (const int threads : {1, 2, 4, 8}) {
    p.fabric.threads = threads;
    expectSameResults(ref, runSimulation(p),
                      "parallel threads=" + std::to_string(threads));
  }
}

TEST(CongestionDeterminism, DemotionKeepsAdaptiveHealthy) {
  // With demotion on, adaptive forwarding must survive (congested ports are
  // demoted, not banned — when everything is congested the full set
  // returns) and the run must still complete.
  SimParams p = hotspotParams();
  p.congestion.demoteCongestedPorts = true;
  const SimResults with = runSimulation(p);
  p.congestion.demoteCongestedPorts = false;
  const SimResults without = runSimulation(p);
  EXPECT_TRUE(with.measurementComplete);
  EXPECT_TRUE(without.measurementComplete);
  EXPECT_GT(with.adaptiveForwardFraction, 0.0);
  EXPECT_GT(without.adaptiveForwardFraction, 0.0);
}

}  // namespace
}  // namespace ibadapt
