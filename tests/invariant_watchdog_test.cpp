//
// Runtime invariant watchdog: credit conservation, split-buffer bounds, and
// wait-for-graph forward-progress classification (deadlock vs congestion vs
// livelock), plus the kRecord / kAbort / kRecover policies.
//
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <tuple>

#include "api/simulation.hpp"
#include "check/invariant_watchdog.hpp"
#include "fault/fault_audit.hpp"
#include "fault/fault_campaign.hpp"
#include "host/reliable_transport.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"

namespace ibadapt {
namespace {

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

TEST(WatchdogSpec, ValidateRejectsBadKnobs) {
  WatchdogSpec ok;
  EXPECT_NO_THROW(ok.validate());
  WatchdogSpec s;
  s.periodNs = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.maxDrainAgeNs = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  // The constructor validates too.
  EXPECT_THROW(InvariantWatchdog{s}, std::invalid_argument);
}

TEST(InvariantWatchdog, HealthyRunStaysCleanUnderAbort) {
  // A healthy loaded fabric must produce zero violations even with the
  // strictest policy — the checker may never cry wolf.
  SimParams p;
  p.numSwitches = 8;
  p.loadBytesPerNsPerNode = 0.05;
  p.warmupPackets = 500;
  p.measurePackets = 3000;
  p.invariantPolicy = WatchdogPolicy::kAbort;
  p.invariantPeriodNs = 20'000;  // many checks inside the short stats budget
  const SimResults r = runSimulation(p);
  EXPECT_TRUE(r.measurementComplete);
  EXPECT_GT(r.invariants.checksRun, 0u);
  EXPECT_EQ(r.invariants.violations(), 0u) << r.invariants.summary();
  EXPECT_FALSE(r.invariants.aborted);
}

TEST(InvariantWatchdog, RecoverRepairsAnInjectedCreditLeak) {
  // Corrupt the credit books directly (2 credits vanish from the
  // inter-switch output port) and let the kRecover watchdog both flag the
  // conservation breach and restore the exact balance.
  const Topology topo = testing::twoSwitchTopology(2);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  const PortIndex isl = 2;  // the only inter-switch link: (0,2)-(1,2)
  ASSERT_EQ(topo.peer(0, isl).kind, PeerKind::kSwitch);
  fabric.repairOutputCredits(0, isl, 0, -2);  // raw leak, no ledger entry
  ASSERT_EQ(fabric.outputCredits(0, isl, 0),
            fabric.outputCreditsMax(0, isl, 0) - 2);

  WatchdogSpec ws;
  ws.policy = WatchdogPolicy::kRecover;
  InvariantWatchdog dog(ws);
  dog.check(fabric, 0);
  EXPECT_EQ(dog.stats().creditConservationViolations, 1u);
  EXPECT_EQ(dog.stats().creditsRecovered, 2u);
  EXPECT_NE(dog.stats().firstViolation.find("sw0.out2.vl0"),
            std::string::npos)
      << dog.stats().firstViolation;
  EXPECT_EQ(fabric.outputCredits(0, isl, 0),
            fabric.outputCreditsMax(0, isl, 0));

  // The repaired books pass the next audit; nothing new accumulates.
  dog.check(fabric, 0);
  EXPECT_EQ(dog.stats().checksRun, 2u);
  EXPECT_EQ(dog.stats().violations(), 1u);
  EXPECT_FALSE(dog.stats().aborted);
}

TEST(InvariantWatchdog, AbortPolicyStopsTheFabric) {
  const Topology topo = testing::twoSwitchTopology(2);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();
  fabric.repairOutputCredits(1, 2, 0, -1);

  WatchdogSpec ws;
  ws.policy = WatchdogPolicy::kAbort;
  InvariantWatchdog dog(ws);
  EXPECT_FALSE(fabric.stopRequested());
  dog.check(fabric, 0);
  EXPECT_TRUE(dog.stats().aborted);
  EXPECT_TRUE(fabric.stopRequested());
  EXPECT_EQ(dog.stats().creditConservationViolations, 1u);
}

TEST(InvariantWatchdog, MisorderedRingEscapeIsDeadlockNotCongestion) {
  // Negative test: break the paper's escape-plane discipline on purpose.
  // A 4-switch ring whose every inter-switch route points clockwise is the
  // canonical cyclic credit dependency up*/down* escape paths exist to
  // preclude (§4.4). Full-buffer packets two hops from home wedge all four
  // ring buffers; the wait-for graph must classify that as a deadlock
  // cycle, not as congestion.
  const Topology topo = makeRing(4, 1);
  FabricParams fp;
  fp.numVls = 1;
  fp.bufferCredits = 4;          // one 256 B packet fills a buffer exactly
  fp.escapeReserveCredits = 4;
  fp.numOptions = 1;             // deterministic-only routing
  fp.lmc = 0;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();  // correct up*/down* tables (and local CA delivery)...

  // ...then override every remote route to the clockwise ring port.
  PortIndex cw[4];
  for (SwitchId s = 0; s < 4; ++s) {
    cw[s] = kInvalidPort;
    for (PortIndex p = 1; p <= 2; ++p) {
      if (topo.peer(s, p).kind == PeerKind::kSwitch &&
          topo.peer(s, p).id == (s + 1) % 4) {
        cw[s] = p;
      }
    }
    ASSERT_NE(cw[s], kInvalidPort);
  }
  for (SwitchId s = 0; s < 4; ++s) {
    for (NodeId d = 0; d < 4; ++d) {
      if (topo.switchOfNode(d) == s) continue;
      fabric.setLftEntry(s, fabric.lids().baseLid(d), cw[s]);
    }
  }

  // Every node sends one full-buffer packet two hops clockwise at t=0.
  testing::ScriptedTraffic traffic;
  for (NodeId i = 0; i < 4; ++i) {
    traffic.add(i, 0, (i + 2) % 4, 256, /*adaptive=*/false);
  }
  fabric.attachTraffic(&traffic, 1);
  fabric.start();

  WatchdogSpec ws;
  ws.periodNs = 100'000;
  ws.policy = WatchdogPolicy::kRecord;
  InvariantWatchdog dog(ws);
  dog.attachTo(fabric);

  RunLimits limits;
  limits.endTime = 1'000'000;
  fabric.run(limits);

  EXPECT_EQ(fabric.counters().delivered, 0u);
  const WatchdogStats& st = dog.stats();
  EXPECT_GT(st.checksRun, 0u);
  EXPECT_GE(st.deadlocksDetected, 1u);
  EXPECT_EQ(st.congestionStalls, 0u);  // the cycle IS the whole blockage
  EXPECT_EQ(st.livelocksDetected, 0u);
  EXPECT_EQ(st.creditConservationViolations, 0u);
  EXPECT_EQ(st.splitBoundViolations, 0u);
  EXPECT_NE(st.firstViolation.find("deadlock cycle"), std::string::npos)
      << st.firstViolation;
}

TEST(InvariantWatchdog, AcceptanceMixedTransientCampaignCleanUnderAbort) {
  // The PR's acceptance bar: a seeded campaign mixing bit errors and
  // credit-update loss, with the watchdog in kAbort mode, completes with
  // zero invariant violations, every leaked credit resynced, and
  // deliveredFraction() == 1.0 under the reliable transport.
  const Topology topo = irregular(16, 4, 77);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  FaultCampaignSpec spec;
  spec.transient.berPerBit = 5e-5;
  spec.transient.creditLossRate = 0.1;
  spec.transient.resyncPeriodNs = 50'000;
  spec.transient.resyncDetectPeriods = 2;
  spec.transient.seed = 11;
  FaultCampaign campaign(fabric, sm, spec);

  WatchdogSpec ws;
  ws.periodNs = 250'000;
  ws.policy = WatchdogPolicy::kAbort;
  InvariantWatchdog dog(ws);
  dog.attachTo(fabric);

  testing::ScriptedTraffic inner;
  const NodeId n = topo.numNodes();
  const SimTime lastGen = 2'500'000;
  for (NodeId src = 0; src < n; ++src) {
    for (int i = 0; i < 8; ++i) {
      inner.add(src, src * 211 + static_cast<SimTime>(i) * (lastGen / 8),
                (src + n / 2) % n, 32, /*adaptive=*/false);
    }
  }
  ReliableTransportSpec rts;
  rts.baseRtoNs = 30'000;
  rts.maxRtoNs = 480'000;
  ReliableTransport rt(inner, n, rts);
  testing::RecordingObserver obs;
  rt.attachObserver(&obs);
  fabric.attachTraffic(&rt, 1);
  fabric.attachObserver(&rt);
  fabric.start();

  RunLimits limits;
  limits.endTime = lastGen + 8'000'000;
  campaign.run(limits);

  // Watchdog: many checks, zero violations, never aborted.
  const WatchdogStats& st = dog.stats();
  EXPECT_GT(st.checksRun, 10u);
  EXPECT_EQ(st.violations(), 0u) << st.summary();
  EXPECT_FALSE(st.aborted);
  EXPECT_FALSE(fabric.stopRequested());

  // Both fault classes actually fired, and every leak healed.
  ResilienceStats rs = campaign.stats();
  EXPECT_GT(rs.crcDrops, 0u);
  EXPECT_GT(rs.creditUpdatesLost, 0u);
  EXPECT_GT(rs.creditsLeaked, 0u);
  EXPECT_EQ(rs.creditsResynced, rs.creditsLeaked);
  EXPECT_EQ(fabric.leakedCreditsOutstanding(), 0);

  // Exactly-once delivery; the stats answer reads 1.0.
  EXPECT_EQ(rt.uniqueSent(), static_cast<std::uint64_t>(n) * 8);
  EXPECT_EQ(rt.uniqueDelivered(), rt.uniqueSent());
  EXPECT_EQ(rt.abandoned(), 0u);
  EXPECT_EQ(rt.outstanding(), 0u);
  rs.uniqueSent = rt.uniqueSent();
  rs.uniqueDelivered = rt.uniqueDelivered();
  EXPECT_DOUBLE_EQ(rs.deliveredFraction(), 1.0);
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>, int> seen;
  for (const auto& d : obs.deliveries) {
    ++seen[{d.pkt.src, d.pkt.dst, d.pkt.e2eSeq}];
  }
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);

  const AuditReport audit = auditFabric(fabric, /*expectQuiescent=*/true);
  EXPECT_TRUE(audit.ok()) << audit.detail;
}

}  // namespace
}  // namespace ibadapt
