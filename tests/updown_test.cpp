//
// up*/down* verification: legality, coherence, loop freedom, reachability,
// and — crucially — deadlock freedom via an explicit channel-dependency
// cycle check over the table-programmed routes.
//
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "routing/updown.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

struct TopoCase {
  const char* name;
  std::function<Topology()> make;
};

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

class UpDownTopoTest : public ::testing::TestWithParam<TopoCase> {};

TEST_P(UpDownTopoTest, EveryTableRouteIsLegalAndTerminates) {
  const Topology topo = GetParam().make();
  const UpDownRouting ud(topo);
  const int s = topo.numSwitches();
  for (SwitchId from = 0; from < s; ++from) {
    for (SwitchId to = 0; to < s; ++to) {
      if (from == to) continue;
      const auto path = ud.tableRoute(from, to);
      ASSERT_FALSE(path.empty()) << "no route " << from << "->" << to;
      EXPECT_EQ(path.front(), from);
      EXPECT_EQ(path.back(), to);
      EXPECT_TRUE(ud.legalPath(path))
          << "illegal up*/down* path " << from << "->" << to;
      // Bounded length: up phase <= eccentricity, down phase <= diameter.
      EXPECT_LE(static_cast<int>(path.size()), 2 * s);
    }
  }
}

TEST_P(UpDownTopoTest, ChannelDependencyGraphIsAcyclic) {
  // Build the dependency graph over directed links induced by all table
  // routes: link (a->b) depends on (b->c) when some route uses them
  // consecutively. up*/down* must make this graph acyclic (deadlock
  // freedom with one queue per link).
  const Topology topo = GetParam().make();
  const UpDownRouting ud(topo);
  const int s = topo.numSwitches();

  // Enumerate directed inter-switch channels.
  std::vector<std::pair<SwitchId, SwitchId>> channels;
  std::vector<std::vector<int>> chanIndex(
      static_cast<std::size_t>(s), std::vector<int>(static_cast<std::size_t>(s), -1));
  for (SwitchId a = 0; a < s; ++a) {
    for (const auto& [b, port] : topo.switchNeighbors(a)) {
      (void)port;
      chanIndex[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          static_cast<int>(channels.size());
      channels.emplace_back(a, b);
    }
  }
  std::vector<std::vector<int>> deps(channels.size());
  for (SwitchId from = 0; from < s; ++from) {
    for (SwitchId to = 0; to < s; ++to) {
      if (from == to) continue;
      const auto path = ud.tableRoute(from, to);
      for (std::size_t i = 2; i < path.size(); ++i) {
        const int c1 = chanIndex[static_cast<std::size_t>(path[i - 2])]
                                [static_cast<std::size_t>(path[i - 1])];
        const int c2 = chanIndex[static_cast<std::size_t>(path[i - 1])]
                                [static_cast<std::size_t>(path[i])];
        deps[static_cast<std::size_t>(c1)].push_back(c2);
      }
    }
  }
  // DFS cycle detection.
  enum class Mark { kWhite, kGray, kBlack };
  std::vector<Mark> mark(channels.size(), Mark::kWhite);
  std::function<bool(int)> hasCycle = [&](int u) {
    mark[static_cast<std::size_t>(u)] = Mark::kGray;
    for (int v : deps[static_cast<std::size_t>(u)]) {
      if (mark[static_cast<std::size_t>(v)] == Mark::kGray) return true;
      if (mark[static_cast<std::size_t>(v)] == Mark::kWhite && hasCycle(v)) {
        return true;
      }
    }
    mark[static_cast<std::size_t>(u)] = Mark::kBlack;
    return false;
  };
  for (std::size_t c = 0; c < channels.size(); ++c) {
    if (mark[c] == Mark::kWhite) {
      EXPECT_FALSE(hasCycle(static_cast<int>(c)))
          << "channel dependency cycle — deadlock possible";
    }
  }
}

TEST_P(UpDownTopoTest, DownPreferredCoherence) {
  // If a switch has an all-down path, its next hop must be a down hop; only
  // switches without one may route up. This is the invariant that makes
  // phase-free tables coherent.
  const Topology topo = GetParam().make();
  const UpDownRouting ud(topo);
  const int s = topo.numSwitches();
  for (SwitchId from = 0; from < s; ++from) {
    for (SwitchId to = 0; to < s; ++to) {
      if (from == to) continue;
      const PortIndex p = ud.nextHopPort(from, to);
      const SwitchId nb = topo.peer(from, p).id;
      if (ud.downDistance(from, to) >= 0) {
        EXPECT_FALSE(ud.isUp(from, nb));
        EXPECT_EQ(ud.downDistance(nb, to), ud.downDistance(from, to) - 1);
      } else {
        EXPECT_TRUE(ud.isUp(from, nb));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, UpDownTopoTest,
    ::testing::Values(
        TopoCase{"ring8", [] { return makeRing(8, 4); }},
        TopoCase{"mesh4x4", [] { return makeMesh2D(4, 4, 4); }},
        TopoCase{"torus4x4", [] { return makeTorus2D(4, 4, 4); }},
        TopoCase{"cube4", [] { return makeHypercube(4, 4); }},
        TopoCase{"irr8", [] { return irregular(8, 4, 21); }},
        TopoCase{"irr16", [] { return irregular(16, 4, 22); }},
        TopoCase{"irr16d6", [] { return irregular(16, 6, 23); }},
        TopoCase{"irr32", [] { return irregular(32, 4, 24); }},
        TopoCase{"irr64", [] { return irregular(64, 4, 25); }}),
    [](const ::testing::TestParamInfo<TopoCase>& info) {
      return info.param.name;
    });

TEST(UpDown, RootSelectionPolicies) {
  const Topology topo = makeMesh2D(3, 3, 2);
  EXPECT_EQ(selectRoot(topo, RootSelection::kLowestId), 0);
  EXPECT_EQ(selectRoot(topo, RootSelection::kHighestDegree), 4);  // center
  EXPECT_EQ(selectRoot(topo, RootSelection::kMinEccentricity), 4);
}

TEST(UpDown, LevelsAreBfsDistancesFromRoot) {
  const Topology topo = makeMesh2D(4, 4, 2);
  const UpDownRouting ud(topo, RootSelection::kLowestId);
  EXPECT_EQ(ud.root(), 0);
  const auto dist = topo.bfsDistances(0);
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    EXPECT_EQ(ud.level(sw), dist[static_cast<std::size_t>(sw)]);
  }
}

TEST(UpDown, IsUpAntisymmetric) {
  const Topology topo = makeTorus2D(4, 4, 2);
  const UpDownRouting ud(topo);
  for (SwitchId a = 0; a < topo.numSwitches(); ++a) {
    for (const auto& [b, port] : topo.switchNeighbors(a)) {
      (void)port;
      EXPECT_NE(ud.isUp(a, b), ud.isUp(b, a));
    }
  }
}

TEST(UpDown, LegalPathChecker) {
  const Topology topo = makeRing(6, 2);
  const UpDownRouting ud(topo, RootSelection::kLowestId);
  // Root is 0; 3 is the far side. A path 3->2->1->0 moves up only: legal.
  EXPECT_TRUE(ud.legalPath({3, 2, 1, 0}));
  // Down then up must be rejected: 0 is the root, so 0->1 is down and
  // 1->2... ring levels: 1,2 have levels 1,2 — 1->2 is down too; find a
  // real violation: 0->1 (down) then 1->0 (up).
  EXPECT_FALSE(ud.legalPath({0, 1, 0}));
}

TEST(UpDown, RejectsDisconnectedGraph) {
  Topology topo(4, 6, 2);
  topo.addLink(0, 1);
  topo.addLink(2, 3);
  EXPECT_THROW(UpDownRouting{topo}, std::invalid_argument);
}

TEST(UpDown, TableRouteHopsMatchesPathLength) {
  const Topology topo = makeMesh2D(3, 3, 2);
  const UpDownRouting ud(topo);
  for (SwitchId a = 0; a < 9; ++a) {
    for (SwitchId b = 0; b < 9; ++b) {
      if (a == b) continue;
      EXPECT_EQ(ud.tableRouteHops(a, b),
                static_cast<int>(ud.tableRoute(a, b).size()) - 1);
    }
  }
}

}  // namespace
}  // namespace ibadapt
