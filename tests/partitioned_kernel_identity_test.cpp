//
// Bit-identity of the partitioned parallel kernel at the 1024-switch scale
// gate: for each topology family, every thread count in {1, 2, 4, 8} and
// every partition strategy must reproduce the sequential calendar kernel's
// SimResults exactly — the topology-aware partitioner and the per-edge
// lookahead widening are pure performance knobs.
//
// (Suite names intentionally do not contain "ParallelKernel": the TSan smoke
// in scripts/check_tier1.sh runs that pattern, and these 1024-switch runs
// are sized for native builds. Race coverage for the same code paths comes
// from the small-fixture ParallelKernel suites.)
//
#include <gtest/gtest.h>

#include "api/simulation.hpp"

namespace ibadapt {
namespace {

void expectBitIdentical(const SimResults& a, const SimResults& b,
                        const char* what) {
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.injected, b.injected) << what;
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.measured, b.measured) << what;
  EXPECT_EQ(a.kernelEvents, b.kernelEvents) << what;
  EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs) << what;
  EXPECT_EQ(a.p50LatencyNs, b.p50LatencyNs) << what;
  EXPECT_EQ(a.p99LatencyNs, b.p99LatencyNs) << what;
  EXPECT_EQ(a.avgHops, b.avgHops) << what;
  EXPECT_EQ(a.adaptiveForwardFraction, b.adaptiveForwardFraction) << what;
  EXPECT_EQ(a.escapeForwardFraction, b.escapeForwardFraction) << what;
  EXPECT_EQ(a.acceptedBytesPerNsPerSwitch, b.acceptedBytesPerNsPerSwitch)
      << what;
  EXPECT_EQ(a.maxLinkUtilization, b.maxLinkUtilization) << what;
  EXPECT_EQ(a.meanLinkUtilization, b.meanLinkUtilization) << what;
  EXPECT_EQ(a.inOrderViolations, b.inOrderViolations) << what;
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs) << what;
  EXPECT_EQ(a.e2eLatencyNs, b.e2eLatencyNs) << what;
  EXPECT_EQ(a.resilience.faultsInjected, b.resilience.faultsInjected) << what;
  EXPECT_EQ(a.resilience.smSweeps, b.resilience.smSweeps) << what;
  EXPECT_EQ(a.resilience.packetsCorrupted, b.resilience.packetsCorrupted)
      << what;
  EXPECT_EQ(a.resilience.creditUpdatesLost, b.resilience.creditUpdatesLost)
      << what;
  EXPECT_EQ(a.resilience.retransmitsSent, b.resilience.retransmitsSent)
      << what;
  EXPECT_EQ(a.resilience.uniqueDelivered, b.resilience.uniqueDelivered)
      << what;
}

SimParams fatTree1024Params() {
  SimParams p;
  p.topoKind = TopologyKind::kFatTree;
  p.fatTreeArity = 2;
  p.fatTreeLevels = 8;  // 1024 switches
  p.nodesPerSwitch = 2;
  p.loadBytesPerNsPerNode = 0.02;
  p.warmupPackets = 300;
  p.measurePackets = 2000;
  return p;
}

SimParams dragonfly1024Params() {
  SimParams p;
  p.topoKind = TopologyKind::kDragonfly;
  p.dragonflyRoutersPerGroup = 16;
  p.dragonflyGlobalPerRouter = 4;
  p.dragonflyGroups = 64;  // 1024 switches
  p.nodesPerSwitch = 2;
  p.loadBytesPerNsPerNode = 0.02;
  p.warmupPackets = 300;
  p.measurePackets = 2000;
  return p;
}

// Irregular fabric under the full robustness stack: stochastic link faults
// with SM re-sweeps, bit-error corruption, credit loss + resync, and the
// reliable transport. The hardest ordering case for a repartitioned fabric.
SimParams irregularCampaignParams() {
  SimParams p;
  p.topoKind = TopologyKind::kIrregular;
  p.numSwitches = 64;
  p.linksPerSwitch = 4;
  p.nodesPerSwitch = 4;
  p.loadBytesPerNsPerNode = 0.02;
  p.warmupPackets = 200;
  p.measurePackets = 1500;
  p.maxSimTimeNs = 3'000'000;
  p.faultMtbfNs = 400'000;
  p.faultMttrNs = 150'000;
  p.faultSeed = 3;
  p.sweepDelayNs = 30'000;
  p.berPerBit = 2e-5;
  p.creditLossRate = 0.05;
  p.creditResyncPeriodNs = 50'000;
  p.reliableTransport = true;
  return p;
}

class PartitionedKernelIdentity
    : public ::testing::TestWithParam<TopologyKind> {
 protected:
  static SimParams params(TopologyKind kind) {
    switch (kind) {
      case TopologyKind::kFatTree:
        return fatTree1024Params();
      case TopologyKind::kDragonfly:
        return dragonfly1024Params();
      default:
        return irregularCampaignParams();
    }
  }
};

TEST_P(PartitionedKernelIdentity, EveryThreadCountMatchesSequential) {
  const Topology topo = buildTopology(params(GetParam()));
  SimParams seq = params(GetParam());
  seq.fabric.kernel = SimKernel::kCalendar;
  const SimResults ref = runSimulationOn(topo, seq);
  ASSERT_GT(ref.delivered, 0u);
  for (int threads : {1, 2, 4, 8}) {
    SimParams par = params(GetParam());
    par.fabric.kernel = SimKernel::kParallel;
    par.fabric.threads = threads;
    const SimResults got = runSimulationOn(topo, par);
    expectBitIdentical(ref, got, "threads");
    EXPECT_EQ(got.threadsUsed, threads);
    if (threads > 1) {
      // The partitioner actually partitioned: the proxy metrics are live.
      EXPECT_GT(got.shardTotalLinks, 0u);
      EXPECT_GT(got.windowsExecuted, 0u);
    }
  }
}

TEST_P(PartitionedKernelIdentity, EveryPartitionStrategyMatchesSequential) {
  const Topology topo = buildTopology(params(GetParam()));
  SimParams seq = params(GetParam());
  seq.fabric.kernel = SimKernel::kCalendar;
  const SimResults ref = runSimulationOn(topo, seq);
  for (const PartitionStrategy st :
       {PartitionStrategy::kBlock, PartitionStrategy::kRoundRobin,
        PartitionStrategy::kTopology}) {
    SimParams par = params(GetParam());
    par.fabric.kernel = SimKernel::kParallel;
    par.fabric.threads = 4;
    par.fabric.partition = st;
    expectBitIdentical(ref, runSimulationOn(topo, par),
                       partitionStrategyName(st));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, PartitionedKernelIdentity,
                         ::testing::Values(TopologyKind::kFatTree,
                                           TopologyKind::kDragonfly,
                                           TopologyKind::kIrregular));

TEST(ShardPartitionProxy, TopologyPartitionBeatsRoundRobinMailboxTraffic) {
  // The CI gate's claim, at test scale: on both 1024-switch hierarchical
  // families the topology-aware partition moves >= 30% fewer events through
  // cross-shard mailboxes than the strided baseline, in fewer-or-equal
  // windows — deterministic counters, so this holds on any core count.
  for (const SimParams& base :
       {fatTree1024Params(), dragonfly1024Params()}) {
    const Topology topo = buildTopology(base);
    auto runWith = [&](PartitionStrategy st) {
      SimParams p = base;
      p.fabric.kernel = SimKernel::kParallel;
      p.fabric.threads = 4;
      p.fabric.partition = st;
      return runSimulationOn(topo, p);
    };
    const SimResults t = runWith(PartitionStrategy::kTopology);
    const SimResults rr = runWith(PartitionStrategy::kRoundRobin);
    EXPECT_GT(rr.crossShardMessages, 0u);
    EXPECT_LE(10 * t.crossShardMessages, 7 * rr.crossShardMessages)
        << "topology=" << t.crossShardMessages
        << " round-robin=" << rr.crossShardMessages;
    EXPECT_LE(t.windowsExecuted, rr.windowsExecuted);
    EXPECT_LE(t.shardImbalance, 1.10 + 1e-9);
  }
}

TEST(ShardPartitionProxy, SingleShardRunsHaveNoCrossShardTraffic) {
  SimParams p = fatTree1024Params();
  p.fabric.kernel = SimKernel::kParallel;
  p.fabric.threads = 1;
  const SimResults r = runSimulation(p);
  EXPECT_EQ(r.crossShardMessages, 0u);
  EXPECT_EQ(r.shardCutLinks, 0u);
  EXPECT_GT(r.windowsExecuted, 0u);
}

}  // namespace
}  // namespace ibadapt
