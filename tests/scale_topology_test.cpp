//
// The scale axis: hierarchical generators (fat-tree / dragonfly) and the
// end-to-end path at production sizes. Structural properties are checked at
// both a small size (~64 switches, exhaustively) and the 1024-switch scale
// gate (spot-checked where exhaustive would dominate suite runtime), plus
// cross-kernel / cross-thread bit-identity on both new topology kinds.
//
#include <gtest/gtest.h>

#include <set>

#include "api/simulation.hpp"
#include "routing/updown.hpp"
#include "topology/generators.hpp"

namespace ibadapt {
namespace {

// Deterministic pseudo-random pair sampler for the 1024-switch spot checks.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

int pow_int(int base, int exp) {
  int v = 1;
  for (int i = 0; i < exp; ++i) v *= base;
  return v;
}

// Shared invariants of the per-switch node-attachment constructor: the
// node<->switch lookup arrays must round-trip and agree with the port map.
void expectNodeAttachmentConsistent(const Topology& topo) {
  int total = 0;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const int count = topo.nodeCount(sw);
    ASSERT_GE(count, 0);
    total += count;
    for (PortIndex p = 0; p < count; ++p) {
      const NodeId n = topo.nodeAt(sw, p);
      ASSERT_GE(n, 0);
      ASSERT_LT(n, topo.numNodes());
      EXPECT_EQ(topo.switchOfNode(n), sw);
      EXPECT_EQ(topo.portOfNode(n), p);
      const Peer& peer = topo.peer(sw, p);
      EXPECT_EQ(peer.kind, PeerKind::kNode);
      EXPECT_EQ(peer.id, n);
    }
  }
  EXPECT_EQ(total, topo.numNodes());
}

// Degree bound every generator must respect: inter-switch links plus hosted
// nodes fit in the declared port count.
void expectPortBudgetRespected(const Topology& topo) {
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    EXPECT_LE(topo.nodeCount(sw) + topo.interSwitchDegree(sw),
              topo.portsPerSwitch());
  }
}

// ---------------------------------------------------------------------------
// Fat-tree (k-ary n-tree) structure
// ---------------------------------------------------------------------------

struct FatTreeCase {
  int arity;
  int levels;
  int hostsPerLeaf;  // -1 = arity
};

class FatTreeStructure : public ::testing::TestWithParam<FatTreeCase> {};

TEST_P(FatTreeStructure, MatchesKaryNTreeConstruction) {
  const FatTreeCase c = GetParam();
  FatTreeSpec spec;
  spec.arity = c.arity;
  spec.levels = c.levels;
  spec.hostsPerLeaf = c.hostsPerLeaf;
  const Topology topo = makeFatTree(spec);

  const int perLevel = pow_int(c.arity, c.levels - 1);
  const int hosts = c.hostsPerLeaf < 0 ? c.arity : c.hostsPerLeaf;
  EXPECT_EQ(topo.numSwitches(), c.levels * perLevel);
  EXPECT_EQ(topo.numNodes(), hosts * perLevel);
  EXPECT_EQ(topo.portsPerSwitch(), std::max(2 * c.arity, hosts + c.arity));
  EXPECT_TRUE(topo.connectedSwitchGraph());
  // Every adjacent tier pair is a full butterfly stage: k up-links per
  // switch below the top tier, so the link count is exact.
  EXPECT_EQ(topo.numLinks(), (c.levels - 1) * perLevel * c.arity);

  // Hosts attach to leaf switches (level 0 = ids [0, perLevel)) only.
  EXPECT_FALSE(topo.uniformNodes());
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    EXPECT_EQ(topo.nodeCount(sw), sw < perLevel ? hosts : 0);
  }
  expectNodeAttachmentConsistent(topo);
  expectPortBudgetRespected(topo);

  // Tier degrees: leaves and the top tier see one butterfly stage (k
  // links), interior tiers see two (2k links).
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const int level = sw / perLevel;
    const bool edge = level == 0 || level == c.levels - 1;
    EXPECT_EQ(topo.interSwitchDegree(sw), edge ? c.arity : 2 * c.arity)
        << "switch " << sw;
  }

  // Pure function of the spec.
  EXPECT_EQ(topo.describe(), makeFatTree(spec).describe());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FatTreeStructure,
    ::testing::Values(FatTreeCase{4, 3, -1},    // 48 switches / 64 hosts
                      FatTreeCase{2, 6, 4},     // 192 switches / 128 hosts
                      FatTreeCase{2, 8, -1}));  // 1024 switches (scale gate)

TEST(FatTree, RejectsInvalidSpecs) {
  FatTreeSpec spec;
  spec.arity = 1;
  EXPECT_THROW(makeFatTree(spec), std::invalid_argument);
  spec.arity = 4;
  spec.levels = 1;
  EXPECT_THROW(makeFatTree(spec), std::invalid_argument);
  spec.levels = 3;
  spec.hostsPerLeaf = 0;
  EXPECT_THROW(makeFatTree(spec), std::invalid_argument);
}

// Up*/down* orients links by BFS level from its own root (not by fat-tree
// tier), but the fat-tree graph is bipartite — links only join adjacent
// tiers — so every up hop drops the BFS level by exactly one and every
// down hop raises it by one. A table route (up* then down*) is therefore
// bounded by level(from) + level(to), on top of being legal.
TEST(FatTree, UpDownTablesLegalExhaustivelyAtSmallSize) {
  FatTreeSpec spec;
  spec.arity = 4;
  spec.levels = 3;
  const Topology topo = makeFatTree(spec);
  const UpDownRouting routing(topo);
  for (SwitchId from = 0; from < topo.numSwitches(); ++from) {
    for (SwitchId to = 0; to < topo.numSwitches(); ++to) {
      if (from == to) continue;
      const auto path = routing.tableRoute(from, to);
      ASSERT_GE(path.size(), 2u);
      EXPECT_TRUE(routing.legalPath(path));
      EXPECT_LE(static_cast<int>(path.size()) - 1,
                routing.level(from) + routing.level(to));
    }
  }
}

TEST(FatTree, UpDownTablesLegalSpotCheckedAtScaleGate) {
  FatTreeSpec spec;
  spec.arity = 2;
  spec.levels = 8;
  const Topology topo = makeFatTree(spec);
  ASSERT_EQ(topo.numSwitches(), 1024);
  const UpDownRouting routing(topo);
  Lcg rng{42};
  for (int i = 0; i < 200; ++i) {
    const auto from = static_cast<SwitchId>(rng.next() % 1024);
    const auto to = static_cast<SwitchId>(rng.next() % 1024);
    if (from == to) continue;
    const auto path = routing.tableRoute(from, to);
    EXPECT_TRUE(routing.legalPath(path));
    EXPECT_LE(static_cast<int>(path.size()) - 1,
              routing.level(from) + routing.level(to));
  }
}

// ---------------------------------------------------------------------------
// Dragonfly structure
// ---------------------------------------------------------------------------

struct DragonflyCase {
  int a, p, h, g;
};

class DragonflyStructure : public ::testing::TestWithParam<DragonflyCase> {};

TEST_P(DragonflyStructure, MatchesGroupCliqueConstruction) {
  const DragonflyCase c = GetParam();
  DragonflySpec spec;
  spec.routersPerGroup = c.a;
  spec.hostsPerRouter = c.p;
  spec.globalPerRouter = c.h;
  spec.groups = c.g;
  spec.seed = 7;
  const Topology topo = makeDragonfly(spec);

  const int groups = c.g > 0 ? c.g : c.a * c.h + 1;
  EXPECT_EQ(topo.numSwitches(), c.a * groups);
  EXPECT_EQ(topo.numNodes(), c.a * groups * c.p);
  EXPECT_EQ(topo.portsPerSwitch(), c.p + (c.a - 1) + c.h);
  EXPECT_TRUE(topo.connectedSwitchGraph());
  expectNodeAttachmentConsistent(topo);
  expectPortBudgetRespected(topo);

  // Groups are cliques: every same-group router pair is directly linked.
  const int probeGroups = std::min(groups, 4);
  for (int grp = 0; grp < probeGroups; ++grp) {
    for (int r1 = 0; r1 < c.a; ++r1) {
      for (int r2 = r1 + 1; r2 < c.a; ++r2) {
        EXPECT_TRUE(topo.linked(grp * c.a + r1, grp * c.a + r2));
      }
    }
  }

  // Each router carries at most h global links on top of its clique links,
  // and at least one global link leaves every group.
  int globalLinks = 0;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const int globals = topo.interSwitchDegree(sw) - (c.a - 1);
    EXPECT_GE(globals, 0);
    EXPECT_LE(globals, c.h);
    globalLinks += globals;
  }
  EXPECT_GE(globalLinks, 2 * groups);
  EXPECT_EQ(topo.numLinks(),
            groups * c.a * (c.a - 1) / 2 + globalLinks / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DragonflyStructure,
    ::testing::Values(DragonflyCase{8, 4, 1, 8},      // 64 switches
                      DragonflyCase{4, 2, 1, 0},      // balanced g = a*h+1
                      DragonflyCase{16, 4, 4, 64}));  // 1024 switches

TEST(Dragonfly, SeedPermutesGlobalWiringDeterministically) {
  DragonflySpec spec;
  spec.routersPerGroup = 8;
  spec.hostsPerRouter = 4;
  spec.globalPerRouter = 2;
  spec.groups = 8;
  spec.seed = 11;
  const std::string first = makeDragonfly(spec).describe();
  EXPECT_EQ(first, makeDragonfly(spec).describe());
  // A different seed re-permutes which router carries which global link;
  // h=2 with 8 routers leaves plenty of room, so at least one of a handful
  // of reseeds must differ.
  bool anyDifferent = false;
  for (std::uint64_t s = 12; s < 17 && !anyDifferent; ++s) {
    spec.seed = s;
    anyDifferent = makeDragonfly(spec).describe() != first;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Dragonfly, RejectsInvalidSpecs) {
  DragonflySpec spec;
  spec.routersPerGroup = 1;
  EXPECT_THROW(makeDragonfly(spec), std::invalid_argument);
  spec.routersPerGroup = 4;
  spec.hostsPerRouter = 0;
  EXPECT_THROW(makeDragonfly(spec), std::invalid_argument);
  spec.hostsPerRouter = 2;
  spec.globalPerRouter = 0;
  EXPECT_THROW(makeDragonfly(spec), std::invalid_argument);
  spec.globalPerRouter = 1;
  spec.groups = 1;  // < 2 groups has nowhere to land global links
  EXPECT_THROW(makeDragonfly(spec), std::invalid_argument);
  spec.groups = 6;  // > a*h + 1 cannot stay connected round-robin
  EXPECT_THROW(makeDragonfly(spec), std::invalid_argument);
}

TEST(Dragonfly, UpDownTablesLegalExhaustivelyAtSmallSize) {
  DragonflySpec spec;
  spec.routersPerGroup = 8;
  spec.hostsPerRouter = 4;
  spec.globalPerRouter = 1;
  spec.groups = 8;
  const Topology topo = makeDragonfly(spec);
  ASSERT_EQ(topo.numSwitches(), 64);
  const UpDownRouting routing(topo);
  for (SwitchId from = 0; from < topo.numSwitches(); ++from) {
    for (SwitchId to = 0; to < topo.numSwitches(); ++to) {
      if (from == to) continue;
      const auto path = routing.tableRoute(from, to);
      ASSERT_GE(path.size(), 2u);
      EXPECT_TRUE(routing.legalPath(path));
    }
  }
}

TEST(Dragonfly, UpDownTablesLegalSpotCheckedAtScaleGate) {
  DragonflySpec spec;
  spec.routersPerGroup = 16;
  spec.hostsPerRouter = 4;
  spec.globalPerRouter = 4;
  spec.groups = 64;
  const Topology topo = makeDragonfly(spec);
  ASSERT_EQ(topo.numSwitches(), 1024);
  ASSERT_EQ(topo.numNodes(), 4096);
  const UpDownRouting routing(topo);
  Lcg rng{99};
  for (int i = 0; i < 200; ++i) {
    const auto from = static_cast<SwitchId>(rng.next() % 1024);
    const auto to = static_cast<SwitchId>(rng.next() % 1024);
    if (from == to) continue;
    const auto path = routing.tableRoute(from, to);
    EXPECT_TRUE(routing.legalPath(path));
  }
}

// ---------------------------------------------------------------------------
// End-to-end: saturated short runs on both kinds, watchdog standing guard
// ---------------------------------------------------------------------------

SimParams scaleParams(TopologyKind kind) {
  SimParams p;
  p.topoKind = kind;
  if (kind == TopologyKind::kFatTree) {
    p.fatTreeArity = 4;
    p.fatTreeLevels = 3;  // 48 switches / 64 hosts
  } else {
    p.dragonflyRoutersPerGroup = 8;
    p.dragonflyGlobalPerRouter = 1;
    p.dragonflyGroups = 8;  // 64 switches / 256 hosts
  }
  p.nodesPerSwitch = 4;
  p.saturation = true;
  p.warmupPackets = 500;
  p.measurePackets = 3000;
  return p;
}

class HierarchicalSaturation : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(HierarchicalSaturation, SaturatedRunIsWatchdogClean) {
  const SimResults r = runSimulation(scaleParams(GetParam()));
  EXPECT_TRUE(r.measurementComplete) << r.summary();
  EXPECT_FALSE(r.deadlockSuspected) << r.summary();
  EXPECT_FALSE(r.livePacketLimitHit) << r.summary();
  EXPECT_EQ(r.invariants.violations(), 0u) << r.summary();
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.acceptedBytesPerNsPerSwitch, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, HierarchicalSaturation,
                         ::testing::Values(TopologyKind::kFatTree,
                                           TopologyKind::kDragonfly));

// ---------------------------------------------------------------------------
// Bit-identity across kernels and thread counts on the new topology kinds
// ---------------------------------------------------------------------------

void expectBitIdentical(const SimResults& a, const SimResults& b,
                        const char* what) {
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.injected, b.injected) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.measured, b.measured) << what;
  EXPECT_EQ(a.kernelEvents, b.kernelEvents) << what;
  EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs) << what;
  EXPECT_EQ(a.p99LatencyNs, b.p99LatencyNs) << what;
  EXPECT_EQ(a.avgHops, b.avgHops) << what;
  EXPECT_EQ(a.acceptedBytesPerNsPerSwitch, b.acceptedBytesPerNsPerSwitch)
      << what;
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs) << what;
  EXPECT_EQ(a.inOrderViolations, b.inOrderViolations) << what;
}

SimParams identityParams(TopologyKind kind) {
  SimParams p = scaleParams(kind);
  p.saturation = false;
  p.loadBytesPerNsPerNode = 0.03;
  p.warmupPackets = 300;
  p.measurePackets = 2000;
  return p;
}

class HierarchicalKernelIdentity
    : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(HierarchicalKernelIdentity, CalendarMatchesLegacyHeap) {
  SimParams cal = identityParams(GetParam());
  SimParams heap = cal;
  cal.fabric.kernel = SimKernel::kCalendar;
  heap.fabric.kernel = SimKernel::kLegacyHeap;
  expectBitIdentical(runSimulation(cal), runSimulation(heap),
                     "calendar vs legacy heap");
}

TEST_P(HierarchicalKernelIdentity, ParallelMatchesSequentialForAnyThreads) {
  SimParams seq = identityParams(GetParam());
  seq.fabric.kernel = SimKernel::kCalendar;
  const SimResults ref = runSimulation(seq);
  for (int threads : {2, 4, 8}) {
    SimParams par = seq;
    par.fabric.kernel = SimKernel::kParallel;
    par.fabric.threads = threads;
    const SimResults got = runSimulation(par);
    expectBitIdentical(ref, got, "parallel vs sequential");
    EXPECT_GT(got.threadsUsed, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, HierarchicalKernelIdentity,
                         ::testing::Values(TopologyKind::kFatTree,
                                           TopologyKind::kDragonfly));

TEST(HierarchicalKernelIdentity, TwoThousandSwitchCrossKernelCrossThread) {
  // The 2048-switch scale preset (k=8 4-level fat-tree, 1024 hosts) across
  // every kernel and a threaded shard count: the arena-backed buffers,
  // int16 routing matrices, and batched LFT installs must not cost a bit
  // of determinism at the sizes they exist for. One topology build, short
  // open-loop window — this is an identity check, not a perf run.
  SimParams p;
  p.topoKind = TopologyKind::kFatTree;
  p.fatTreeArity = 8;
  p.fatTreeLevels = 4;  // 2048 switches
  p.nodesPerSwitch = 2;
  p.loadBytesPerNsPerNode = 0.01;
  p.warmupPackets = 1000;
  p.measurePackets = 4000;
  const Topology topo = buildTopology(p);
  ASSERT_GE(topo.numSwitches(), 2048);

  p.fabric.kernel = SimKernel::kCalendar;
  const SimResults cal = runSimulationOn(topo, p);
  ASSERT_TRUE(cal.measurementComplete) << cal.summary();

  SimParams heap = p;
  heap.fabric.kernel = SimKernel::kLegacyHeap;
  expectBitIdentical(cal, runSimulationOn(topo, heap),
                     "2048-sw calendar vs legacy heap");

  SimParams par = p;
  par.fabric.kernel = SimKernel::kParallel;
  par.fabric.threads = 4;
  const SimResults got = runSimulationOn(topo, par);
  expectBitIdentical(cal, got, "2048-sw calendar vs parallel-4");
  EXPECT_GT(got.threadsUsed, 1);
}

}  // namespace
}  // namespace ibadapt
