//
// Behavioural checks of the output-port selection machinery: credit-aware
// selection must actually steer around congestion; the routing-time commit
// must keep its escape fallback; the live-packet safety cap must trip.
//
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"
#include "traffic/synthetic.hpp"

namespace ibadapt {
namespace {

using testing::RecordingObserver;
using testing::ScriptedTraffic;

/// Diamond: 0 - {1,2} - 3 with 2 CAs per switch.
Topology diamond() {
  Topology topo(4, 4, 2);
  topo.addLink(0, 1);
  topo.addLink(0, 2);
  topo.addLink(1, 3);
  topo.addLink(2, 3);
  return topo;
}

/// Port on `sw` toward `nb`.
PortIndex portToward(const Topology& topo, SwitchId sw, SwitchId nb) {
  for (const auto& [n, p] : topo.switchNeighbors(sw)) {
    if (n == nb) return p;
  }
  return kInvalidPort;
}

TEST(SelectionBehavior, CreditAwareSteersAroundCongestion) {
  // Congest the 0->1 branch with deterministic cross traffic pinned to it
  // (up*/down* path), then send adaptive probes 0 -> switch-3: with
  // credit-aware selection they should overwhelmingly take whichever
  // middle switch the congestion avoids.
  const Topology topo = diamond();
  FabricParams fp;
  fp.selectionCriterion = SelectionCriterion::kCreditAware;
  fp.numOptions = 4;  // store BOTH minimal ports, so there is a choice
  fp.lmc = 2;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();

  // Which middle switch does the deterministic path 0 -> 3 use?
  const LidMapper& lids = fabric.lids();
  const NodeId probeDst = topo.nodeAt(3, 0);
  const PortIndex detPort = fabric.lftEntry(0, lids.baseLid(probeDst));
  const SwitchId congested = topo.peer(0, detPort).id;
  const SwitchId clear = congested == 1 ? 2 : 1;

  ScriptedTraffic traffic;
  // Cross traffic: node on switch 0 hammers a node on the congested middle
  // switch (deterministic, fills that link's buffers).
  const NodeId crossDst = topo.nodeAt(congested, 0);
  for (int i = 0; i < 400; ++i) {
    traffic.add(/*src=*/0, i * 128, crossDst, 32, /*adaptive=*/false);
  }
  // Adaptive probes from the other CA of switch 0 to switch 3.
  for (int i = 0; i < 100; ++i) {
    traffic.add(/*src=*/1, 2000 + i * 600, probeDst, 32, /*adaptive=*/true);
  }
  RecordingObserver obs;
  fabric.attachTraffic(&traffic, 1);
  fabric.attachObserver(&obs);
  fabric.start();
  RunLimits limits;
  limits.endTime = 200'000'000;
  fabric.run(limits);
  ASSERT_EQ(obs.deliveries.size(), 500u);

  // Infer path via byte counters on switch 0's two middle-bound ports.
  const auto viaCongested = fabric.outputBytesSent(
      0, portToward(topo, 0, congested));
  const auto viaClear = fabric.outputBytesSent(0, portToward(topo, 0, clear));
  // Cross traffic (400 x 32B) is pinned to the congested port; probes
  // (100 x 32B) should mostly pick the clear one.
  EXPECT_GE(viaClear, 60u * 32u)
      << "credit-aware selection failed to avoid the congested branch";
  EXPECT_GE(viaCongested, 400u * 32u);
}

TEST(SelectionBehavior, RoutingTimeCommitKeepsEscapeFallback) {
  // With kAtRouting the packet commits to one adaptive port at table-access
  // time. Saturate everything: packets whose committed port is busy must
  // still drain via the escape option — the run must not wedge.
  const Topology topo = diamond();
  FabricParams fp;
  fp.selectionTiming = SelectionTiming::kAtRouting;
  fp.bufferCredits = 2;
  fp.escapeReserveCredits = 1;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();
  ScriptedTraffic traffic;
  for (int i = 0; i < 300; ++i) {
    traffic.add(0, i * 64, topo.nodeAt(3, 0), 32, true);
    traffic.add(1, i * 64, topo.nodeAt(3, 1), 32, true);
    traffic.add(6, i * 64, topo.nodeAt(0, 0), 32, true);
  }
  RecordingObserver obs;
  fabric.attachTraffic(&traffic, 1);
  fabric.attachObserver(&obs);
  fabric.start();
  RunLimits limits;
  limits.endTime = 300'000'000;
  fabric.run(limits);
  EXPECT_FALSE(fabric.deadlockSuspected());
  EXPECT_EQ(obs.deliveries.size(), 900u);
  EXPECT_GT(fabric.counters().escapeForwards, 0u);
}

TEST(SelectionBehavior, LivePacketCapStopsRunawayRuns) {
  // Absurd over-offering with a tiny cap: the engine must stop and flag it
  // rather than grow without bound.
  const Topology topo = diamond();
  FabricParams fp;
  // Pin the window width: the cap below is enforced at window boundaries,
  // so the overshoot bound scales with however wide the engine's windows
  // are allowed to grow.
  fp.windowCapNs = 100;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();
  TrafficSpec ts;
  ts.numNodes = topo.numNodes();
  ts.loadBytesPerNsPerNode = 10.0;  // 40x the link rate
  SyntheticTraffic traffic(ts, 3);
  fabric.attachTraffic(&traffic, 3);
  fabric.start();
  RunLimits limits;
  limits.endTime = 100'000'000;
  limits.maxLivePackets = 2000;
  fabric.run(limits);
  EXPECT_TRUE(fabric.livePacketLimitHit());
  // The cap is enforced at lookahead-window boundaries (the same instants
  // for every kernel and thread count), so the overshoot is bounded by one
  // window of generation: 4 nodes * (10 B/ns / 32 B) * 100 ns = 125.
  EXPECT_LE(fabric.livePackets(), 2000u + 130u);
}

TEST(SelectionBehavior, RandomSelectionIsSeededDeterministically) {
  auto run = [&](std::uint64_t seed) {
    const Topology topo = diamond();
    FabricParams fp;
    fp.selectionCriterion = SelectionCriterion::kRandom;
    fp.selectionSeed = seed;
    Fabric fabric(topo, fp);
    SubnetManager sm(fabric);
    sm.configure();
    ScriptedTraffic traffic;
    for (int i = 0; i < 200; ++i) {
      traffic.add(0, i * 64, topo.nodeAt(3, 0), 32, true);
      traffic.add(1, i * 64, topo.nodeAt(3, 1), 32, true);
    }
    RecordingObserver obs;
    fabric.attachTraffic(&traffic, 1);
    fabric.attachObserver(&obs);
    fabric.start();
    RunLimits limits;
    limits.endTime = 100'000'000;
    fabric.run(limits);
    SimTime last = 0;
    for (const auto& d : obs.deliveries) last = std::max(last, d.at);
    return last;
  };
  EXPECT_EQ(run(5), run(5));  // same seed, same trajectory
}

}  // namespace
}  // namespace ibadapt
