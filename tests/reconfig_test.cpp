//
// Live reconfiguration: the epoch-versioned forwarding table, the
// ReconfigManager state machine (including faults racing an in-flight
// compute/install), the end-to-end live-swap campaign, and the
// live-vs-stop-and-resweep comparison the paper's robustness story rests on.
//
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "api/simulation.hpp"
#include "core/forwarding_table.hpp"
#include "fault/fault_audit.hpp"
#include "fault/fault_campaign.hpp"
#include "host/reliable_transport.hpp"
#include "subnet/reconfig.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"

namespace ibadapt {
namespace {

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

/// Live inter-switch links whose individual removal keeps the graph
/// connected (safe to fail one at a time).
std::vector<std::pair<SwitchId, PortIndex>> nonCriticalLinks(
    const Topology& topo) {
  std::vector<std::pair<SwitchId, PortIndex>> out;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (const auto& [nb, port] : topo.switchNeighbors(sw)) {
      if (sw > nb) continue;
      Topology probe = topo;
      const Peer peer = probe.peer(sw, port);
      probe.removeLink(sw, port);
      if (probe.connectedSwitchGraph()) out.emplace_back(sw, port);
      probe.restoreLink(sw, port, peer.id, peer.port);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// VersionedForwardingTable: the dual-bank LFT under the swap
// ---------------------------------------------------------------------------

TEST(VersionedTable, StageCommitSelectsByPacketEpoch) {
  VersionedForwardingTable vt(/*numBanks=*/2, /*lidLimit=*/64);
  vt.setEntry(10, 3);
  vt.setEntry(11, 4);
  ASSERT_EQ(vt.epoch(), 0u);
  ASSERT_EQ(vt.entry(10), 3);

  vt.stageBegin();
  EXPECT_TRUE(vt.staging());
  vt.stageEntry(10, 5);
  // Staging must not disturb the table live traffic routes on.
  EXPECT_EQ(vt.entry(10), 3);
  EXPECT_EQ(vt.entry(10, /*pktEpoch=*/0), 3);

  vt.commitStaged(1);
  EXPECT_FALSE(vt.staging());
  EXPECT_EQ(vt.epoch(), 1u);
  // Fresh injections (epoch 1) route on the new image...
  EXPECT_EQ(vt.entry(10), 5);
  EXPECT_EQ(vt.entry(10, 1), 5);
  // ... while in-flight epoch-0 packets keep resolving the old bank at
  // every hop, including entries the new image never programmed.
  EXPECT_EQ(vt.entry(10, 0), 3);
  EXPECT_EQ(vt.entry(11, 0), 4);
  EXPECT_EQ(vt.entry(11, 1), kInvalidPort);  // staged image left it unset

  // lookup() follows the same selection as entry().
  EXPECT_EQ(vt.lookup(10, 0).escapePort, 3);
  EXPECT_EQ(vt.lookup(10, 1).escapePort, 5);
}

TEST(VersionedTable, SecondSwapReusesTheDrainedBank) {
  VersionedForwardingTable vt(2, 64);
  vt.setEntry(10, 1);
  vt.stageBegin();
  vt.stageEntry(10, 2);
  vt.commitStaged(1);
  // Epoch 0 retired; its bank becomes the shadow for epoch 2. stageBegin
  // wipes the stale image so unprogrammed entries cannot leak through.
  vt.stageBegin();
  vt.stageEntry(10, 3);
  vt.commitStaged(2);
  EXPECT_EQ(vt.epoch(), 2u);
  EXPECT_EQ(vt.entry(10, 2), 3);
  EXPECT_EQ(vt.entry(10, 1), 2);
  // Only two epochs are discriminable — exactly the SM's guarantee. A
  // (retired) epoch-0 stamp now falls back to the oldest live bank.
  EXPECT_EQ(vt.entry(10, 0), 2);
}

TEST(VersionedTable, ShadowBankIsLazilyAllocated) {
  VersionedForwardingTable vt(2, 4096);
  // A run that never reconfigures must pay for exactly one table: the
  // shadow stays unallocated through arbitrary active-table traffic.
  EXPECT_FALSE(vt.shadowAllocated());
  for (Lid lid = 1; lid < 4096; ++lid) {
    vt.setEntry(lid, static_cast<PortIndex>(lid % 7));
  }
  std::vector<std::uint8_t> row(4096, 2);
  vt.setBlock(0, row.data(), row.size());
  for (Lid lid = 0; lid < 4096; lid += 137) {
    EXPECT_EQ(vt.entry(lid), 2);
    EXPECT_EQ(vt.entry(lid, /*pktEpoch=*/0), 2);
    EXPECT_EQ(vt.lookup(lid, /*pktEpoch=*/5).escapePort, 2);
  }
  EXPECT_FALSE(vt.shadowAllocated());

  // First staged sweep brings the second bank into existence, and it stays
  // for subsequent swaps.
  vt.stageBegin();
  EXPECT_TRUE(vt.shadowAllocated());
  vt.stageEntry(10, 5);
  vt.commitStaged(1);
  EXPECT_TRUE(vt.shadowAllocated());
  EXPECT_EQ(vt.entry(10, 1), 5);
  EXPECT_EQ(vt.entry(10, 0), 2);
}

TEST(VersionedTable, StageBlockProgramsTheShadowBank) {
  VersionedForwardingTable vt(2, 64);
  for (Lid lid = 0; lid < 64; ++lid) vt.setEntry(lid, 1);
  vt.stageBegin();
  std::vector<std::uint8_t> image(64, 0xff);
  image[10] = 6;
  image[11] = 7;
  vt.stageBlock(0, image.data(), image.size());
  // Active table untouched while staging.
  EXPECT_EQ(vt.entry(10), 1);
  vt.commitStaged(1);
  EXPECT_EQ(vt.entry(10, 1), 6);
  EXPECT_EQ(vt.entry(11, 1), 7);
  EXPECT_EQ(vt.entry(12, 1), kInvalidPort);  // image left it unset
  EXPECT_EQ(vt.entry(12, 0), 1);
}

TEST(VersionedTable, StagingErrorPaths) {
  VersionedForwardingTable vt(2, 64);
  EXPECT_THROW(vt.stageEntry(1, 1), std::logic_error);
  EXPECT_THROW(vt.commitStaged(1), std::logic_error);
  vt.stageBegin();
  EXPECT_THROW(vt.commitStaged(2), std::logic_error);  // must advance by one
  EXPECT_THROW(vt.commitStaged(0), std::logic_error);
  vt.commitStaged(1);
  EXPECT_THROW(vt.commitStaged(2), std::logic_error);  // staging consumed
}

// ---------------------------------------------------------------------------
// ReconfigManager state machine: faults racing an in-flight cycle
// ---------------------------------------------------------------------------

/// Steps the manager through every due action up to and including `until`.
void stepUntil(ReconfigManager& mgr, SimTime until) {
  while (mgr.nextActionAt() <= until) mgr.step(mgr.nextActionAt());
}

TEST(ReconfigManager, RequestMidComputeRestartsAgainstAFreshSnapshot) {
  const Topology topo = irregular(8, 4, 21);
  const auto safe = nonCriticalLinks(topo);
  ASSERT_GE(safe.size(), 2u);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  ReconfigSpec spec;
  spec.mode = ReconfigMode::kLiveEpochSwap;
  spec.computeDelayNs = 20'000;
  spec.smpRttNs = 1'000;
  ReconfigManager mgr(fabric, sm, spec, SubnetParams{});

  // Fault -> request. The fabric is empty, so wait-retire passes at once
  // and the compute window is exactly [0, 20'000).
  fabric.failLink(safe[0].first, safe[0].second);
  mgr.requestSweep(0);
  mgr.step(0);
  ASSERT_EQ(mgr.nextActionAt(), 20'000);

  // A second change lands mid-compute: the plan in progress was built from
  // a snapshot that never saw it, so it must be thrown away and restarted.
  fabric.recoverLink(safe[0].first, safe[0].second);
  mgr.requestSweep(10'000);
  EXPECT_EQ(mgr.stats().computeRestarts, 1u);
  ASSERT_EQ(mgr.nextActionAt(), 30'000);  // restarted clock

  stepUntil(mgr, 1'000'000);
  ASSERT_TRUE(mgr.idle());
  const ReconfigStats& rs = mgr.stats();
  // One cycle covers both changes: a single epoch advance, no follow-up.
  EXPECT_EQ(rs.sweepsCompleted, 1u);
  EXPECT_EQ(rs.epochsInstalled, 1u);
  EXPECT_EQ(fabric.injectionEpoch(), 1u);
  EXPECT_GT(rs.smpsSent, 0u);

  const auto done = mgr.drainCompletions();
  ASSERT_EQ(done.size(), 1u);
  // The restarted snapshot (t=10'000) covers both the fault and the
  // recovery; the first snapshot's horizon (t=0) must not survive.
  EXPECT_EQ(done[0].coveredThrough, 10'000);
  // Install cost was real: begin + blocks + commit per switch, serialized.
  EXPECT_GE(done[0].at,
            30'000 + static_cast<SimTime>(rs.smpsSent) * spec.smpRttNs);

  // The installed tables route the restored topology: a full audit of the
  // escape plane against the current (fault-free) topology passes.
  const AuditReport audit = auditFabric(fabric, /*expectQuiescent=*/true);
  EXPECT_TRUE(audit.ok()) << audit.detail;
}

TEST(ReconfigManager, RequestMidInstallQueuesAFollowUpCycle) {
  const Topology topo = irregular(8, 4, 21);
  const auto safe = nonCriticalLinks(topo);
  ASSERT_GE(safe.size(), 2u);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  ReconfigSpec spec;
  spec.mode = ReconfigMode::kLiveEpochSwap;
  spec.computeDelayNs = 20'000;
  spec.smpRttNs = 1'000;
  ReconfigManager mgr(fabric, sm, spec, SubnetParams{});

  fabric.failLink(safe[0].first, safe[0].second);
  mgr.requestSweep(0);
  mgr.step(0);
  mgr.step(20'000);  // compute done -> install flow begins
  ASSERT_GT(mgr.nextActionAt(), 20'000);
  ASSERT_FALSE(mgr.idle());

  // The link comes back while SMPs are on the wire. The install cannot be
  // aborted (switches already committed staged banks); the request queues a
  // complete second cycle instead.
  fabric.recoverLink(safe[0].first, safe[0].second);
  mgr.requestSweep(21'000);
  EXPECT_EQ(mgr.stats().computeRestarts, 0u);

  stepUntil(mgr, 2'000'000);
  ASSERT_TRUE(mgr.idle());
  const ReconfigStats& rs = mgr.stats();
  EXPECT_EQ(rs.sweepsCompleted, 2u);
  EXPECT_EQ(rs.epochsInstalled, 2u);
  EXPECT_EQ(fabric.injectionEpoch(), 2u);

  const auto done = mgr.drainCompletions();
  ASSERT_EQ(done.size(), 2u);
  // First cycle still covers only its own snapshot (the recovery hit
  // after); the follow-up's snapshot covers the recovery.
  EXPECT_EQ(done[0].coveredThrough, 0);
  EXPECT_GE(done[1].coveredThrough, 21'000);
  EXPECT_GT(done[1].at, done[0].at);

  const AuditReport audit = auditFabric(fabric, /*expectQuiescent=*/true);
  EXPECT_TRUE(audit.ok()) << audit.detail;
}

// ---------------------------------------------------------------------------
// recoverLink racing an in-flight sweep, under traffic, end to end
// ---------------------------------------------------------------------------

TEST(LiveReconfig, RecoveryRacingTheSweepStaysExactlyOnce) {
  const Topology topo = irregular(8, 4, 77);
  const auto safe = nonCriticalLinks(topo);
  ASSERT_GE(safe.size(), 2u);

  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  // Two scripted fail/recover cycles tuned so each recovery's sweep
  // request lands inside the previous request's live cycle (sweep delay
  // 30 us, compute 20 us, install tens of us): the first races the
  // compute, the second races the install/activation tail.
  FaultCampaignSpec spec;
  spec.sweepDelayNs = 30'000;
  spec.reconfig.mode = ReconfigMode::kLiveEpochSwap;
  spec.reconfig.computeDelayNs = 20'000;
  spec.reconfig.smpRttNs = 1'000;
  ScriptedFault a;
  a.failAtNs = 200'000;
  a.recoverAtNs = 205'000;  // request at 235 us, mid-compute (230-250 us)
  a.sw = safe[0].first;
  a.port = safe[0].second;
  spec.scripted.push_back(a);
  ScriptedFault b;
  b.failAtNs = 1'200'000;
  b.recoverAtNs = 1'228'000;  // request at 1258 us, into the install flow
  b.sw = safe[1].first;
  b.port = safe[1].second;
  spec.scripted.push_back(b);
  FaultCampaign campaign(fabric, sm, spec);

  // Deterministic cross-fabric flows spanning the campaign, under the
  // reliable transport: anything stranded on stale routes is retransmitted.
  testing::ScriptedTraffic inner;
  const NodeId n = topo.numNodes();
  for (NodeId src = 0; src < n; ++src) {
    const NodeId dst = (src + n / 2) % n;
    for (int i = 0; i < 8; ++i) {
      inner.add(src, src * 37 + static_cast<SimTime>(i) * 180'000, dst, 32,
                /*adaptive=*/true);
    }
  }
  ReliableTransportSpec rts;
  rts.baseRtoNs = 30'000;
  rts.maxRtoNs = 480'000;
  ReliableTransport rt(inner, n, rts);
  testing::RecordingObserver obs;
  rt.attachObserver(&obs);
  fabric.attachTraffic(&rt, 1);
  fabric.attachObserver(&rt);
  fabric.start();

  RunLimits limits;
  limits.endTime = 8'000'000;  // generous retransmit tail
  campaign.run(limits);

  const ResilienceStats& rs = campaign.stats();
  EXPECT_FALSE(fabric.deadlockSuspected());
  EXPECT_EQ(rs.faultsInjected, 2);
  EXPECT_EQ(rs.linksRecovered, 2);
  EXPECT_TRUE(fabric.failedLinks().empty());
  EXPECT_TRUE(rs.allAuditsPassed()) << rs.firstAuditFailure;

  // The races actually happened: at least one compute was thrown away for
  // a fresh snapshot, and every completed sweep was a real epoch swap.
  EXPECT_GE(rs.computeRestarts, 1u);
  EXPECT_GE(rs.epochsInstalled, 2u);
  EXPECT_EQ(static_cast<std::uint32_t>(rs.smSweeps), rs.epochsInstalled);
  EXPECT_GT(rs.reconfigSmpsSent, 0u);
  EXPECT_EQ(rs.injectionPausedNs, 0u);  // live mode never gates injection
  EXPECT_EQ(fabric.injectionEpoch(), rs.epochsInstalled);

  // Exactly-once delivery end to end despite the mid-install recovery.
  EXPECT_EQ(rt.uniqueSent(), static_cast<std::uint64_t>(n) * 8);
  EXPECT_EQ(rt.uniqueDelivered(), rt.uniqueSent());
  EXPECT_EQ(rt.abandoned(), 0u);
  EXPECT_EQ(rt.outstanding(), 0u);
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>, int> seen;
  for (const auto& d : obs.deliveries) {
    ++seen[{d.pkt.src, d.pkt.dst, d.pkt.e2eSeq}];
  }
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);

  // The drained fabric holds zero stuck credits and a whole escape plane.
  const AuditReport quiescent = auditFabric(fabric, /*expectQuiescent=*/true);
  EXPECT_TRUE(quiescent.ok()) << quiescent.detail;
}

// ---------------------------------------------------------------------------
// The live campaign at acceptance scale, and kernel/thread equivalence
// ---------------------------------------------------------------------------

SimParams liveCampaignParams() {
  SimParams p;
  p.numSwitches = 8;
  p.linksPerSwitch = 4;
  p.loadBytesPerNsPerNode = 0.02;
  p.warmupPackets = 100;
  p.measurePackets = ~0ULL >> 1;  // run to the horizon
  p.maxSimTimeNs = 3'000'000;
  p.faultMtbfNs = 150'000;  // ~20 fault events on 16 links: >10% cycling
  p.faultMttrNs = 50'000;
  p.faultSeed = 10;
  p.sweepDelayNs = 30'000;
  p.reliableTransport = true;
  p.reconfig.mode = ReconfigMode::kLiveEpochSwap;
  return p;
}

TEST(LiveReconfig, TenPercentOfLinksCyclingUnderLiveSwapStaysClean) {
  const SimParams p = liveCampaignParams();
  const int links = buildTopology(p).numLinks();
  const SimResults r = runSimulation(p);

  ASSERT_TRUE(r.faultCampaignRan);
  // Acceptance floor: at least 10 % of the inter-switch links failed (and
  // mostly recovered) inside the horizon.
  EXPECT_GE(r.resilience.faultsInjected, (links + 9) / 10);
  EXPECT_GT(r.resilience.linksRecovered, 0);
  EXPECT_GT(r.resilience.epochsInstalled, 0u);
  EXPECT_GT(r.resilience.computeRestarts + r.resilience.epochsInstalled, 1u);

  // Deadlock freedom through every transition window: zero watchdog
  // violations, and in particular no wait-for cycle spanning epochs.
  EXPECT_GT(r.invariants.checksRun, 0u);
  EXPECT_EQ(r.invariants.violations(), 0u) << r.invariants.firstViolation;
  EXPECT_EQ(r.invariants.crossEpochDeadlocks, 0u);
  EXPECT_FALSE(r.deadlockSuspected);

  // Every post-sweep audit of the installed escape plane passed.
  EXPECT_GT(r.resilience.auditsRun, 0);
  EXPECT_TRUE(r.resilience.allAuditsPassed())
      << r.resilience.firstAuditFailure;

  // Exactly-once delivery: unique accounting never exceeds what was sent,
  // duplicates are suppressed (not delivered), and nearly everything that
  // was sent before the horizon made it through the churn.
  EXPECT_LE(r.resilience.uniqueDelivered, r.resilience.uniqueSent);
  EXPECT_GT(r.resilience.uniqueDelivered, 0u);
  EXPECT_GT(r.resilience.deliveredFraction(), 0.95);
}

TEST(LiveReconfig, CampaignBitIdenticalAcrossKernelsAndThreads) {
  // The whole protocol — wait-retire polls, background computes, SMP ack
  // schedules, epoch advances — runs in coordinator context at
  // deterministic times, so the same campaign must produce bit-identical
  // results under every kernel and any shard count.
  auto mk = [](SimKernel k, int threads) {
    SimParams p = liveCampaignParams();
    p.maxSimTimeNs = 2'000'000;
    p.fabric.kernel = k;
    if (k == SimKernel::kParallel) p.fabric.threads = threads;
    return runSimulation(p);
  };
  const SimResults ref = mk(SimKernel::kCalendar, 1);
  ASSERT_GT(ref.resilience.epochsInstalled, 0u);
  const SimResults runs[] = {
      mk(SimKernel::kLegacyHeap, 1),
      mk(SimKernel::kParallel, 1),
      mk(SimKernel::kParallel, 2),
      mk(SimKernel::kParallel, 4),
  };
  for (const SimResults& r : runs) {
    EXPECT_EQ(ref.generated, r.generated);
    EXPECT_EQ(ref.delivered, r.delivered);
    EXPECT_EQ(ref.dropped, r.dropped);
    EXPECT_EQ(ref.kernelEvents, r.kernelEvents);
    EXPECT_EQ(ref.avgLatencyNs, r.avgLatencyNs);
    EXPECT_EQ(ref.e2eLatencyNs, r.e2eLatencyNs);
    EXPECT_EQ(ref.simEndTimeNs, r.simEndTimeNs);
    EXPECT_EQ(ref.resilience.faultsInjected, r.resilience.faultsInjected);
    EXPECT_EQ(ref.resilience.linksRecovered, r.resilience.linksRecovered);
    EXPECT_EQ(ref.resilience.smSweeps, r.resilience.smSweeps);
    EXPECT_EQ(ref.resilience.epochsInstalled, r.resilience.epochsInstalled);
    EXPECT_EQ(ref.resilience.reconfigSmpsSent, r.resilience.reconfigSmpsSent);
    EXPECT_EQ(ref.resilience.installPhaseNs, r.resilience.installPhaseNs);
    EXPECT_EQ(ref.resilience.reconfigLatencyNs,
              r.resilience.reconfigLatencyNs);
    EXPECT_EQ(ref.resilience.computeRestarts, r.resilience.computeRestarts);
    EXPECT_EQ(ref.resilience.degradedTimeNs, r.resilience.degradedTimeNs);
    EXPECT_EQ(ref.resilience.droppedWhileDegraded,
              r.resilience.droppedWhileDegraded);
    EXPECT_EQ(ref.resilience.retransmitsSent, r.resilience.retransmitsSent);
    EXPECT_EQ(ref.resilience.duplicatesSuppressed,
              r.resilience.duplicatesSuppressed);
    EXPECT_EQ(ref.resilience.uniqueSent, r.resilience.uniqueSent);
    EXPECT_EQ(ref.resilience.uniqueDelivered, r.resilience.uniqueDelivered);
    EXPECT_EQ(ref.resilience.auditsRun, r.resilience.auditsRun);
    EXPECT_EQ(ref.resilience.auditsPassed, r.resilience.auditsPassed);
    EXPECT_EQ(ref.invariants.checksRun, r.invariants.checksRun);
    EXPECT_EQ(ref.invariants.violations(), r.invariants.violations());
    EXPECT_EQ(ref.invariants.crossEpochWaitEdges,
              r.invariants.crossEpochWaitEdges);
    EXPECT_EQ(ref.invariants.crossEpochDeadlocks,
              r.invariants.crossEpochDeadlocks);
  }
}

// ---------------------------------------------------------------------------
// Live vs stop-and-resweep: the comparison the subsystem exists for
// ---------------------------------------------------------------------------

TEST(LiveReconfig, BeatsStopAndResweepUnderDenseFaults) {
  // The bench's reconfiguration-axis regime (BENCH_reconfig.json): faults
  // dense enough that serialized stop-the-world pauses compound into
  // backlog the fabric never works off. Live reconfiguration must deliver
  // strictly more of the offered traffic and spend strictly less time
  // degraded, with zero watchdog violations in both modes.
  auto mk = [](ReconfigMode m) {
    SimParams p;
    p.numSwitches = 8;
    p.linksPerSwitch = 4;
    p.topoSeed = 100;
    p.loadBytesPerNsPerNode = 0.02;
    p.warmupPackets = 100;
    p.measurePackets = ~0ULL >> 1;
    p.maxSimTimeNs = 3'000'000;
    p.reliableTransport = true;
    p.sweepDelayNs = 50'000;
    p.faultMtbfNs = 120'000;
    p.faultMttrNs = 40'000;
    p.faultSeed = 10;
    p.reconfig.mode = m;
    return runSimulation(p);
  };
  const SimResults live = mk(ReconfigMode::kLiveEpochSwap);
  const SimResults drain = mk(ReconfigMode::kDrainAndSweep);

  // Both rode through the same fault schedule without a single violation.
  EXPECT_EQ(live.resilience.faultsInjected, drain.resilience.faultsInjected);
  EXPECT_EQ(live.invariants.violations(), 0u)
      << live.invariants.firstViolation;
  EXPECT_EQ(drain.invariants.violations(), 0u)
      << drain.invariants.firstViolation;
  EXPECT_TRUE(live.resilience.allAuditsPassed())
      << live.resilience.firstAuditFailure;
  EXPECT_TRUE(drain.resilience.allAuditsPassed())
      << drain.resilience.firstAuditFailure;

  // Mode signatures: only drain gates injection, only live swaps epochs.
  EXPECT_GT(drain.resilience.injectionPausedNs, 0u);
  EXPECT_EQ(drain.resilience.epochsInstalled, 0u);
  EXPECT_EQ(live.resilience.injectionPausedNs, 0u);
  EXPECT_GT(live.resilience.epochsInstalled, 0u);

  // The headline: strictly fewer unique packets lost at the horizon, and
  // strictly less time in degraded service.
  const auto lost = [](const SimResults& r) {
    return r.resilience.uniqueSent - r.resilience.uniqueDelivered;
  };
  EXPECT_LT(lost(live), lost(drain));
  EXPECT_LT(live.resilience.degradedTimeNs, drain.resilience.degradedTimeNs);
}

// ---------------------------------------------------------------------------
// Retransmission backoff spec (rides along with the reconfig robustness PR)
// ---------------------------------------------------------------------------

TEST(LiveReconfig, TransportJitterFractionIsValidated) {
  testing::ScriptedTraffic inner;
  ReliableTransportSpec bad;
  bad.jitterFraction = -0.1;
  EXPECT_THROW(ReliableTransport(inner, 4, bad), std::invalid_argument);
  bad.jitterFraction = 1.5;
  EXPECT_THROW(ReliableTransport(inner, 4, bad), std::invalid_argument);
  ReliableTransportSpec ok;
  ok.jitterFraction = 0.0;  // jitter can be disabled outright
  EXPECT_NO_THROW(ReliableTransport(inner, 4, ok));
}

}  // namespace
}  // namespace ibadapt
