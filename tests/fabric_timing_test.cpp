//
// Exact-timing verification of the switch/link/CA model against the paper's
// constants: 4 ns/byte serialization, 100 ns propagation, 100 ns routing,
// virtual cut-through pipelining.
//
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"

namespace ibadapt {
namespace {

using testing::RecordingObserver;
using testing::ScriptedTraffic;

struct Harness {
  explicit Harness(Topology t, FabricParams fp = {})
      : fabric(std::move(t), fp) {
    SubnetManager sm(fabric);
    sm.configure();
    fabric.attachObserver(&observer);
  }

  void run(SimTime until = 1'000'000) {
    fabric.attachTraffic(&traffic, /*seed=*/1);
    fabric.start();
    RunLimits limits;
    limits.endTime = until;
    fabric.run(limits);
  }

  Fabric fabric;
  ScriptedTraffic traffic;
  RecordingObserver observer;
};

// Per-hop pipeline: inject at t; header reaches switch k at
// t + k*(prop + routing) + prop ... with no contention:
//   1 switch : deliver = gen + 2*prop + routing + ser + prop
//   n switches: deliver = gen + n*(prop + routing) + ser + prop
// (ser paid once at the last link under cut-through; earlier links overlap).

TEST(FabricTiming, LocalSwitchDelivery32B) {
  Harness h(testing::twoSwitchTopology());
  h.traffic.add(/*src=*/0, /*at=*/0, /*dst=*/1, /*bytes=*/32, false);
  h.run();
  ASSERT_EQ(h.observer.deliveries.size(), 1u);
  // gen 0 -> header at sw0: 100; route ready: 200; tx 200..328; arrive 428.
  EXPECT_EQ(h.observer.deliveries[0].at, 428);
  EXPECT_EQ(h.observer.deliveries[0].pkt.hops, 1);
}

TEST(FabricTiming, TwoSwitchDelivery32B) {
  Harness h(testing::twoSwitchTopology());
  h.traffic.add(/*src=*/0, /*at=*/0, /*dst=*/4, /*bytes=*/32, false);
  h.run();
  ASSERT_EQ(h.observer.deliveries.size(), 1u);
  // sw0 header 100, grant 200; sw1 header 300, grant 400; tx 400..528,
  // tail at CA 628.
  EXPECT_EQ(h.observer.deliveries[0].at, 628);
  EXPECT_EQ(h.observer.deliveries[0].pkt.hops, 2);
}

TEST(FabricTiming, TwoSwitchDelivery256B) {
  Harness h(testing::twoSwitchTopology());
  h.traffic.add(0, 0, 4, 256, false);
  h.run();
  ASSERT_EQ(h.observer.deliveries.size(), 1u);
  // Cut-through: serialization (1024 ns) paid once despite two hops:
  // 100+100 + 100+100 + 1024 + 100 = 1524.
  EXPECT_EQ(h.observer.deliveries[0].at, 1524);
}

TEST(FabricTiming, ThreeHopCutThrough) {
  Harness h(testing::lineTopology());
  h.traffic.add(0, 0, 8, 32, false);  // node on switch 2
  h.run();
  ASSERT_EQ(h.observer.deliveries.size(), 1u);
  // 3 switches: 3*(100+100) + 128 + 100 = 828.
  EXPECT_EQ(h.observer.deliveries[0].at, 828);
  EXPECT_EQ(h.observer.deliveries[0].pkt.hops, 3);
}

TEST(FabricTiming, AdaptivePacketSameZeroLoadLatency) {
  FabricParams fp;
  Harness h(testing::twoSwitchTopology(), fp);
  h.traffic.add(0, 0, 4, 32, /*adaptive=*/true);
  h.run();
  ASSERT_EQ(h.observer.deliveries.size(), 1u);
  EXPECT_EQ(h.observer.deliveries[0].at, 628);
  EXPECT_TRUE(h.observer.deliveries[0].pkt.adaptive);
}

TEST(FabricTiming, BackToBackPacketsSpacedBySerialization) {
  Harness h(testing::twoSwitchTopology());
  // Two packets from the same CA, generated simultaneously: the source link
  // serializes them 128 ns apart; no other contention on the path.
  h.traffic.add(0, 0, 4, 32, false);
  h.traffic.add(0, 0, 4, 32, false);
  h.run();
  ASSERT_EQ(h.observer.deliveries.size(), 2u);
  EXPECT_EQ(h.observer.deliveries[1].at - h.observer.deliveries[0].at, 128);
}

TEST(FabricTiming, CustomTimingParametersRespected) {
  FabricParams fp;
  fp.routingDelayNs = 50;
  fp.linkPropagationNs = 10;
  fp.nsPerByte = 2;
  Harness h(testing::twoSwitchTopology(), fp);
  h.traffic.add(0, 0, 4, 32, false);
  h.run();
  ASSERT_EQ(h.observer.deliveries.size(), 1u);
  // 2*(10+50) + 64 + 10 = 194.
  EXPECT_EQ(h.observer.deliveries[0].at, 194);
}

TEST(FabricTiming, CrossTrafficContendsOnOutputPort) {
  // Nodes 0 and 1 (same switch) both send to node 4 across the single
  // inter-switch link: the second transfer must wait for the first.
  Harness h(testing::twoSwitchTopology());
  h.traffic.add(0, 0, 4, 32, false);
  h.traffic.add(1, 0, 4, 32, false);
  h.run();
  ASSERT_EQ(h.observer.deliveries.size(), 2u);
  const SimTime gap =
      h.observer.deliveries[1].at - h.observer.deliveries[0].at;
  EXPECT_GE(gap, 128);  // at least one serialization apart
}

TEST(FabricTiming, InjectTimeLagsGenTimeUnderLinkBusy) {
  Harness h(testing::twoSwitchTopology());
  h.traffic.add(0, 0, 4, 256, false);
  h.traffic.add(0, 100, 4, 32, false);  // generated while link is busy
  h.run();
  ASSERT_EQ(h.observer.deliveries.size(), 2u);
  const Packet& second = h.observer.deliveries[1].pkt;
  EXPECT_EQ(second.genTime, 100);
  EXPECT_EQ(second.injectTime, 1024);  // after the 256B serialization
}

TEST(FabricTiming, CountersTrackLifecycle) {
  Harness h(testing::twoSwitchTopology());
  h.traffic.add(0, 0, 4, 32, false);
  h.traffic.add(4, 0, 0, 32, false);
  h.run();
  const auto& c = h.fabric.counters();
  EXPECT_EQ(c.generated, 2u);
  EXPECT_EQ(c.injected, 2u);
  EXPECT_EQ(c.delivered, 2u);
  EXPECT_EQ(c.deliveredBytes, 64u);
  EXPECT_EQ(c.hopSum, 4u);
  EXPECT_EQ(h.fabric.livePackets(), 0u);
}

}  // namespace
}  // namespace ibadapt
