#include <gtest/gtest.h>

#include <cmath>

#include "stats/collector.hpp"
#include "stats/in_order.hpp"
#include "stats/latency.hpp"
#include "stats/resilience.hpp"

namespace ibadapt {
namespace {

TEST(LatencyAccumulator, BasicMoments) {
  LatencyAccumulator acc;
  for (SimTime v : {100, 200, 300, 400, 500}) acc.add(v);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 300.0);
  EXPECT_EQ(acc.min(), 100);
  EXPECT_EQ(acc.max(), 500);
  EXPECT_NEAR(acc.stddev(), std::sqrt(25000.0), 1e-9);
}

TEST(LatencyAccumulator, EmptyIsZero) {
  const LatencyAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), 0.0);
}

TEST(LatencyAccumulator, QuantilesApproximate) {
  LatencyAccumulator acc;
  for (int i = 1; i <= 10000; ++i) acc.add(i);
  EXPECT_NEAR(acc.quantile(0.5), 5000.0, 5000.0 * 0.08);
  EXPECT_NEAR(acc.quantile(0.95), 9500.0, 9500.0 * 0.08);
  EXPECT_NEAR(acc.quantile(0.99), 9900.0, 9900.0 * 0.08);
}

TEST(LatencyAccumulator, ResetClearsEverything) {
  LatencyAccumulator acc;
  acc.add(100);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(LatencyAccumulator, WideDynamicRange) {
  LatencyAccumulator acc;
  acc.add(1);
  acc.add(1'000'000'000);
  EXPECT_EQ(acc.min(), 1);
  EXPECT_EQ(acc.max(), 1'000'000'000);
  EXPECT_GT(acc.quantile(0.99), 1e8);
}

TEST(InOrderChecker, DetectsReordering) {
  InOrderChecker chk(4);
  EXPECT_TRUE(chk.record(0, 1, 1));
  EXPECT_TRUE(chk.record(0, 1, 2));
  EXPECT_FALSE(chk.record(0, 1, 2));  // duplicate
  EXPECT_FALSE(chk.record(0, 1, 1));  // regression
  EXPECT_EQ(chk.violations(), 2u);
}

TEST(InOrderChecker, PairsIndependent) {
  InOrderChecker chk(4);
  EXPECT_TRUE(chk.record(0, 1, 5));
  EXPECT_TRUE(chk.record(1, 0, 1));
  EXPECT_TRUE(chk.record(0, 2, 1));
  EXPECT_TRUE(chk.record(0, 1, 6));
  EXPECT_EQ(chk.violations(), 0u);
}

Packet mkPacket(NodeId src, NodeId dst, SimTime gen, bool adaptive,
                std::uint32_t seq = 0) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.genTime = gen;
  p.adaptive = adaptive;
  p.detSeq = seq;
  p.sizeBytes = 32;
  p.hops = 2;
  return p;
}

TEST(StatsCollector, WarmupThenMeasureThenComplete) {
  // Semantics: the first `warmupPackets` deliveries are skipped; the next
  // delivery opens the measurement window and is counted.
  StatsCollector::Config cfg;
  cfg.warmupPackets = 10;
  cfg.measurePackets = 20;
  StatsCollector sc(cfg, 4);
  SimTime now = 1000;
  std::uint32_t seq = 0;
  for (int i = 0; i < 10; ++i) {
    sc.onDelivered(mkPacket(0, 1, now - 100, false, ++seq), now);
    now += 10;
  }
  EXPECT_FALSE(sc.measuring());
  EXPECT_EQ(sc.measuredPackets(), 0u);
  for (int i = 0; i < 20; ++i) {
    sc.onDelivered(mkPacket(0, 1, now - 250, false, ++seq), now);
    if (i == 0) {
      EXPECT_TRUE(sc.measuring());
      EXPECT_EQ(sc.windowStart(), now);  // opens with the 11th delivery
    }
    now += 10;
  }
  EXPECT_TRUE(sc.measurementComplete());
  EXPECT_EQ(sc.measuredPackets(), 20u);
  EXPECT_DOUBLE_EQ(sc.latency().mean(), 250.0);
  // The window-opening delivery contributes its timestamp but not its
  // bytes: 20 deliveries bound 19 spans, so 19 packets' worth of bytes.
  EXPECT_EQ(sc.measuredBytes(), 19u * 32u);
  EXPECT_DOUBLE_EQ(sc.measuredHopMean(), 2.0);
  EXPECT_DOUBLE_EQ(
      sc.acceptedBytesPerNs(),
      608.0 / static_cast<double>(sc.windowEnd() - sc.windowStart()));
}

TEST(StatsCollector, WindowOpenerBytesExcludedFromThroughput) {
  // Regression: deliveries at a perfectly regular cadence must report
  // exactly rate = bytes / gap. With the opener's bytes included the
  // numerator had N packets over an (N-1)-gap span, overstating accepted
  // traffic by N/(N-1) — worst with tiny measurement windows.
  StatsCollector::Config cfg;
  cfg.warmupPackets = 0;
  cfg.measurePackets = 2;  // tiny window: one span, worst-case inflation
  StatsCollector sc(cfg, 4);
  sc.onDelivered(mkPacket(0, 1, 0, false, 1), 100);  // opens the window
  sc.onDelivered(mkPacket(0, 1, 0, false, 2), 200);
  EXPECT_TRUE(sc.measurementComplete());
  EXPECT_EQ(sc.measuredBytes(), 32u);  // opener excluded
  // One 32-byte packet crossed the 100 ns window: 0.32 B/ns, not 0.64.
  EXPECT_DOUBLE_EQ(sc.acceptedBytesPerNs(), 32.0 / 100.0);
}

TEST(StatsCollector, ExtraDeliveriesAfterCompleteIgnored) {
  StatsCollector::Config cfg;
  cfg.warmupPackets = 0;
  cfg.measurePackets = 5;
  StatsCollector sc(cfg, 4);
  // Warmup of 0 means measurement starts at the first delivery.
  SimTime now = 0;
  for (int i = 0; i < 10; ++i) {
    now += 10;
    sc.onDelivered(mkPacket(0, 1, 0, true), now);
  }
  EXPECT_LE(sc.measuredPackets(), 6u);
  EXPECT_TRUE(sc.measurementComplete());
}

TEST(StatsCollector, PerClassAccumulators) {
  StatsCollector::Config cfg;
  cfg.warmupPackets = 0;
  cfg.measurePackets = 100;
  StatsCollector sc(cfg, 4);
  SimTime now = 100;
  std::uint32_t seq = 0;
  sc.onDelivered(mkPacket(0, 1, 0, true), now);        // latency 100
  sc.onDelivered(mkPacket(0, 1, 0, false, ++seq), 200);  // latency 200
  EXPECT_DOUBLE_EQ(sc.latencyAdaptive().mean(), 100.0);
  EXPECT_DOUBLE_EQ(sc.latencyDeterministic().mean(), 200.0);
}

TEST(StatsCollector, TracksInOrderViolations) {
  StatsCollector::Config cfg;
  StatsCollector sc(cfg, 4);
  sc.onDelivered(mkPacket(0, 1, 0, false, 2), 10);
  sc.onDelivered(mkPacket(0, 1, 0, false, 1), 20);  // reordered
  EXPECT_EQ(sc.inOrder().violations(), 1u);
}

TEST(ResilienceStats, DeliveredFractionIsVacuouslyPerfectWhenUntracked) {
  // Regression: an idle transport ("all zero packets arrived") used to
  // read as 0.0 — total loss — and fail healthy-run acceptance gates.
  ResilienceStats rs;
  EXPECT_DOUBLE_EQ(rs.deliveredFraction(), 1.0);

  rs.uniqueSent = 10;
  rs.uniqueDelivered = 7;
  EXPECT_DOUBLE_EQ(rs.deliveredFraction(), 0.7);
  rs.uniqueDelivered = 10;
  EXPECT_DOUBLE_EQ(rs.deliveredFraction(), 1.0);
}

}  // namespace
}  // namespace ibadapt
