//
// SAN scenario (the paper's motivating use case): a server-cluster fabric
// carrying two traffic classes on the same subnet —
//   * storage I/O that must arrive in order  -> deterministic DLIDs (d),
//   * MPI-style IPC that tolerates reordering -> adaptive DLIDs (d+1).
//
// The sender flips one DLID bit per packet to pick the class (paper §4.2);
// nothing else changes. We report per-class latency at increasing load to
// show IPC traffic gaining from adaptivity while storage keeps its ordering
// guarantee (the run cross-checks zero in-order violations).
//
// Usage: example_san_mixed_workload [switches=16] [ipc_share=60]
//
#include <cstdio>

#include "api/simulation.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  const Flags flags(argc, argv);

  SimParams p;
  p.numSwitches = flags.integer("switches", 16);
  p.linksPerSwitch = 4;
  p.adaptiveFraction = flags.integer("ipc_share", 60) / 100.0;
  p.warmupPackets = 2000;
  p.measurePackets = 15000;
  const Topology topo = buildTopology(p);

  std::printf("SAN fabric: %d switches, %d hosts; %2.0f%% adaptive IPC, "
              "%2.0f%% in-order storage I/O\n\n",
              topo.numSwitches(), topo.numNodes(), 100 * p.adaptiveFraction,
              100 * (1 - p.adaptiveFraction));
  std::printf("%-10s %14s %16s %14s %10s\n", "load", "IPC lat (ns)",
              "storage lat (ns)", "accepted", "in-order");

  for (double load : {0.02, 0.04, 0.08, 0.12, 0.16}) {
    SimParams q = p;
    q.loadBytesPerNsPerNode = load;
    const SimResults r = runSimulationOn(topo, q);
    std::printf("%-10.2f %14.0f %16.0f %14.4f %10s\n",
                load * topo.nodesPerSwitch(), r.avgLatencyAdaptiveNs,
                r.avgLatencyDeterministicNs, r.acceptedBytesPerNsPerSwitch,
                r.inOrderViolations == 0 ? "OK" : "VIOLATED");
  }

  std::printf("\nNote: under congestion the IPC class rides the minimal "
              "adaptive paths while\nstorage stays on its single up*/down* "
              "path — in-order delivery is preserved\nby construction "
              "(checked against per-pair sequence numbers above).\n");
  return 0;
}
