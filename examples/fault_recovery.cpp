//
// Self-healing fabric walkthrough on the FaultCampaign API: scripted and
// stochastic link failures *and recoveries* ride the event timeline, every
// topology change triggers a latency-modeled SM re-sweep, the host-side
// reliable transport retransmits whatever the degraded windows drop, and
// post-sweep audits prove the escape plane stayed whole.
//
// The campaign timeline is built up front, deterministically from the
// seed, so the exact same fault sequence replays on every run.
//
// Usage: example_fault_recovery [switches=16] [seed=3] [mtbf_us=800]
//        [mttr_us=300] [sweep_us=50] [horizon_us=6000]
//
#include <algorithm>
#include <cstdio>

#include "fault/fault_audit.hpp"
#include "fault/fault_campaign.hpp"
#include "host/reliable_transport.hpp"
#include "subnet/subnet_manager.hpp"
#include "topology/generators.hpp"
#include "traffic/synthetic.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  const Flags flags(argc, argv);
  Rng rng(static_cast<std::uint64_t>(flags.integer("seed", 3)));
  IrregularSpec ispec;
  ispec.numSwitches = flags.integer("switches", 16);
  // Redundancy to route around faults, within the simple-graph limit.
  ispec.linksPerSwitch = std::min(6, ispec.numSwitches - 1);
  const Topology topo = makeIrregular(ispec, rng);

  FabricParams fp;
  fp.numOptions = 2;
  fp.lmc = 1;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();

  // Scripted opener — kill the up*/down* root's first link early, bring it
  // back later — plus a stochastic MTBF/MTTR layer for the rest of the run.
  FaultCampaignSpec cspec;
  const auto rootLinks = topo.switchNeighbors(0);
  cspec.scripted.push_back(
      ScriptedFault{200'000, 1'500'000, 0, rootLinks.front().second});
  cspec.mtbfNs = flags.real("mtbf_us", 800) * 1'000.0;
  cspec.mttrNs = flags.real("mttr_us", 300) * 1'000.0;
  cspec.seed = 11;
  cspec.sweepDelayNs =
      static_cast<SimTime>(flags.integer("sweep_us", 50)) * 1'000;
  FaultCampaign campaign(fabric, sm, cspec);

  const SimTime horizon =
      static_cast<SimTime>(flags.integer("horizon_us", 6000)) * 1'000;
  std::printf("Fabric: %d switches / %d hosts / %d links; SM re-sweep %lld us "
              "after each change\n\nFault/recovery timeline (deterministic in "
              "seed %llu):\n",
              topo.numSwitches(), topo.numNodes(), topo.numLinks(),
              static_cast<long long>(cspec.sweepDelayNs / 1'000),
              static_cast<unsigned long long>(cspec.seed));
  for (const auto& e : campaign.timeline()) {
    if (e.at > horizon) break;  // pre-generated tail beyond this run
    std::printf("  %8.1f us  %s sw%d port %d (peer sw%d)\n",
                static_cast<double>(e.at) / 1'000.0,
                e.fail ? "FAIL   " : "recover", e.sw, e.port, e.peerSw);
  }

  // Open-loop uniform traffic under the reliable transport: packets caught
  // on a dying link are retransmitted until they land, exactly once.
  TrafficSpec ts;
  ts.numNodes = topo.numNodes();
  ts.packetBytes = 32;
  ts.loadBytesPerNsPerNode = 0.02;
  SyntheticTraffic traffic(ts, /*seed=*/21);
  ReliableTransport transport(traffic, topo.numNodes(),
                              ReliableTransportSpec{});
  fabric.attachTraffic(&transport, /*seed=*/7);
  fabric.attachObserver(&transport);
  fabric.start();

  RunLimits limits;
  limits.endTime = horizon;
  campaign.run(limits);

  const ResilienceStats& rs = campaign.stats();
  std::printf("\nAfter %.1f us of simulated time:\n",
              static_cast<double>(limits.endTime) / 1'000.0);
  std::printf("  faults injected        %d (links recovered: %d, SM sweeps: "
              "%d)\n",
              rs.faultsInjected, rs.linksRecovered, rs.smSweeps);
  if (rs.timeToRecovery.count() > 0) {
    std::printf("  time to recovery       %.1f us mean, %.1f us max\n",
                rs.timeToRecovery.mean() / 1'000.0,
                static_cast<double>(rs.timeToRecovery.max()) / 1'000.0);
  }
  std::printf("  degraded time          %.1f us (%llu packets dropped inside "
              "the windows,\n                         %llu outside)\n",
              static_cast<double>(rs.degradedTimeNs) / 1'000.0,
              static_cast<unsigned long long>(rs.droppedWhileDegraded),
              static_cast<unsigned long long>(rs.droppedWhileHealthy));
  std::printf("  transport              %llu unique sent, %llu delivered, "
              "%llu retransmits,\n                         %llu duplicates "
              "suppressed, %llu abandoned\n",
              static_cast<unsigned long long>(transport.uniqueSent()),
              static_cast<unsigned long long>(transport.uniqueDelivered()),
              static_cast<unsigned long long>(transport.retransmitsSent()),
              static_cast<unsigned long long>(transport.duplicatesSuppressed()),
              static_cast<unsigned long long>(transport.abandoned()));
  std::printf("  post-sweep audits      %d/%d passed%s%s\n", rs.auditsPassed,
              rs.auditsRun, rs.allAuditsPassed() ? "" : " — first failure: ",
              rs.allAuditsPassed() ? "" : rs.firstAuditFailure.c_str());

  const AuditReport audit = auditFabric(fabric);
  std::printf("  final fabric audit     %s\n",
              audit.ok() ? "escape plane whole, credits sane"
                         : audit.detail.c_str());
  std::printf("\nEvery drop happened while some switch still held a stale "
              "LFT; the transport\nretransmitted those packets and the "
              "receivers deduplicated, so the layers\nabove saw exactly-once "
              "delivery throughout.\n");
  return 0;
}
