//
// Fault recovery with APM path sets (paper §4.1): the LID block of every
// destination carries two complete routing configurations. When a link
// dies, endpoints migrate to the alternate path set instantly — just a
// different DLID — while the subnet manager recomputes tables in the
// background. This example walks the whole timeline on one fabric:
//
//   phase 1: healthy, everyone on path set 0
//   phase 2: a heavily used link fails; set-0 senders lose packets,
//            set-1 senders keep working
//   phase 3: the SM sweep reprograms the tables; set 0 works again
//
// Usage: example_fault_recovery [switches=16] [seed=3]
//
#include <cstdio>

#include "fabric/fabric.hpp"
#include "subnet/subnet_manager.hpp"
#include "topology/generators.hpp"
#include "traffic/synthetic.hpp"
#include "util/flags.hpp"

namespace {

using namespace ibadapt;

/// Synthetic uniform traffic pinned to one APM path set.
class PinnedSetTraffic final : public ITrafficSource {
 public:
  PinnedSetTraffic(int numNodes, int setOffset)
      : numNodes_(numNodes), setOffset_(setOffset) {}

  void setPathSetOffset(int offset) { setOffset_ = offset; }

  Spec makePacket(NodeId src, Rng& rng) override {
    Spec s;
    auto d = static_cast<NodeId>(
        rng.uniformIndex(static_cast<std::uint64_t>(numNodes_ - 1)));
    if (d >= src) ++d;
    s.dst = d;
    s.sizeBytes = 32;
    s.adaptive = true;
    s.pathOffset = setOffset_ + 1;  // adaptive bit inside the sub-block
    return s;
  }
  SimTime firstGenTime(NodeId, Rng& rng) override {
    return static_cast<SimTime>(rng.exponential(1000.0));
  }
  SimTime nextGenTime(NodeId, SimTime now, Rng& rng) override {
    return now + 1 + static_cast<SimTime>(rng.exponential(1000.0));
  }
  bool saturationMode() const override { return false; }

 private:
  int numNodes_;
  int setOffset_;
};

struct PhaseStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

PhaseStats runPhase(Fabric& fabric, SimTime until) {
  const auto before = fabric.counters();
  RunLimits limits;
  limits.endTime = until;
  fabric.run(limits);
  const auto after = fabric.counters();
  return PhaseStats{after.delivered - before.delivered,
                    after.dropped - before.dropped};
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  Rng rng(static_cast<std::uint64_t>(flags.integer("seed", 3)));
  IrregularSpec spec;
  spec.numSwitches = flags.integer("switches", 16);
  spec.linksPerSwitch = 6;  // keep the graph connected after one fault
  const Topology topo = makeIrregular(spec, rng);

  FabricParams fp;
  fp.numOptions = 2;
  fp.lmc = 2;  // 4 addresses: 2 APM sets x 2 options
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  SubnetParams sp;
  sp.apmPathSets = 2;
  sm.configure(sp);

  PinnedSetTraffic traffic(topo.numNodes(), /*setOffset=*/0);
  fabric.attachTraffic(&traffic, /*seed=*/7);
  fabric.start();

  std::printf("Fabric: %d switches / %d hosts, 2 APM path sets programmed\n\n",
              topo.numSwitches(), topo.numNodes());

  const PhaseStats healthy = runPhase(fabric, 2'000'000);
  std::printf("phase 1 (healthy, set 0):      delivered %6llu, dropped %4llu\n",
              static_cast<unsigned long long>(healthy.delivered),
              static_cast<unsigned long long>(healthy.dropped));

  // Fail the first inter-switch link of the up*/down* root — a hot spot of
  // escape traffic.
  const auto nbs = topo.switchNeighbors(0);
  fabric.failLink(0, nbs.front().second);
  std::printf("\n*** link sw0 <-> sw%d FAILED ***\n\n", nbs.front().first);

  const PhaseStats degraded = runPhase(fabric, 4'000'000);
  std::printf("phase 2 (fault, still set 0):  delivered %6llu, dropped %4llu\n",
              static_cast<unsigned long long>(degraded.delivered),
              static_cast<unsigned long long>(degraded.dropped));

  // Endpoints migrate: same fabric, new DLID sub-block. No SM involved.
  traffic.setPathSetOffset(2);
  const PhaseStats migrated = runPhase(fabric, 6'000'000);
  std::printf("phase 2b (migrated to set 1):  delivered %6llu, dropped %4llu\n",
              static_cast<unsigned long long>(migrated.delivered),
              static_cast<unsigned long long>(migrated.dropped));

  // SM sweep rebuilds every table on the degraded topology; set 0 is clean
  // again and endpoints can migrate back.
  sm.configure(sp);
  traffic.setPathSetOffset(0);
  const PhaseStats recovered = runPhase(fabric, 8'000'000);
  std::printf("phase 3 (SM reswept, set 0):   delivered %6llu, dropped %4llu\n",
              static_cast<unsigned long long>(recovered.delivered),
              static_cast<unsigned long long>(recovered.dropped));

  std::printf("\nNote: drops in phase 2 are packets whose only programmed "
              "routes crossed the dead\nlink (IBA switches time these out); "
              "migration and the SM sweep both stop the loss.\nSet-1 paths "
              "are salted differently, so they often — not always — avoid "
              "the fault.\n");
  return 0;
}
