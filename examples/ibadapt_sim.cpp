//
// ibadapt_sim — command-line front end to the whole simulator, in the
// spirit of BookSim-style config-driven runs. Every knob of SimParams is a
// key=value flag; the report prints latency, throughput, path behaviour and
// health in the paper's units.
//
// Examples:
//   example_ibadapt_sim switches=32 links=4 load=0.05 adaptive=1.0
//   example_ibadapt_sim topology=torus width=4 height=4 pattern=transpose
//   example_ibadapt_sim switches=16 saturation=1 adaptive=0 packet=256
//   example_ibadapt_sim switches=16 knee=1 adaptive=1.0     (throughput search)
//
#include <cstdio>
#include <string>

#include "api/simulation.hpp"
#include "api/sweep.hpp"
#include "util/flags.hpp"

namespace {

using namespace ibadapt;

TrafficPattern parsePattern(const std::string& s) {
  if (s == "uniform") return TrafficPattern::kUniform;
  if (s == "bitrev" || s == "bit-reversal") return TrafficPattern::kBitReversal;
  if (s == "hotspot" || s == "hot-spot") return TrafficPattern::kHotspot;
  if (s == "transpose") return TrafficPattern::kTranspose;
  if (s == "shuffle") return TrafficPattern::kShuffle;
  if (s == "locality") return TrafficPattern::kLocality;
  throw std::invalid_argument("unknown pattern: " + s);
}

TopologyKind parseTopology(const std::string& s) {
  if (s == "irregular") return TopologyKind::kIrregular;
  if (s == "ring") return TopologyKind::kRing;
  if (s == "mesh") return TopologyKind::kMesh2D;
  if (s == "torus") return TopologyKind::kTorus2D;
  if (s == "hypercube" || s == "cube") return TopologyKind::kHypercube;
  throw std::invalid_argument("unknown topology: " + s);
}

WatchdogPolicy parsePolicy(const std::string& s) {
  if (s == "record") return WatchdogPolicy::kRecord;
  if (s == "abort") return WatchdogPolicy::kAbort;
  if (s == "recover") return WatchdogPolicy::kRecover;
  throw std::invalid_argument("unknown watchdog policy: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "keys: topology=irregular|ring|mesh|torus|hypercube switches links\n"
        "      width height dim nodes seed  pattern=uniform|bitrev|hotspot|\n"
        "      transpose|shuffle|locality hotfrac hotnode window\n"
        "      load (bytes/ns/node) saturation=0|1 knee=0|1 adaptive=0..1\n"
        "      packet=32|256 burstiness burstgap  options lmc vls buffer\n"
        "      reserve  multipath apmsets apmset  warmup measure tseed\n"
        "      ber creditloss resync_us fseed  retransport=0|1\n"
        "      wdperiod_us wdpolicy=record|abort|recover\n");
    return 0;
  }

  SimParams p;
  p.topoKind = parseTopology(flags.str("topology", "irregular"));
  p.numSwitches = flags.integer("switches", 16);
  p.linksPerSwitch = flags.integer("links", 4);
  p.nodesPerSwitch = flags.integer("nodes", 4);
  p.meshWidth = flags.integer("width", 4);
  p.meshHeight = flags.integer("height", 4);
  p.hypercubeDim = flags.integer("dim", 4);
  p.topoSeed = static_cast<std::uint64_t>(flags.integer("seed", 1));

  p.pattern = parsePattern(flags.str("pattern", "uniform"));
  p.hotspotFraction = flags.real("hotfrac", 0.1);
  p.hotspotNode = flags.integer("hotnode", kInvalidId);
  p.localityWindow = flags.integer("window", 8);
  p.packetBytes = flags.integer("packet", 32);
  p.adaptiveFraction = flags.real("adaptive", 1.0);
  p.loadBytesPerNsPerNode = flags.real("load", 0.05);
  p.saturation = flags.boolean("saturation", false);
  p.burstiness = flags.real("burstiness", 0.0);
  p.burstGapMeanNs = flags.real("burstgap", 20'000.0);
  p.trafficSeed = static_cast<std::uint64_t>(flags.integer("tseed", 7));

  p.fabric.numOptions = flags.integer("options", 2);
  p.fabric.lmc = flags.integer("lmc", p.fabric.numOptions > 2 ? 2 : 1);
  p.fabric.numVls = flags.integer("vls", 1);
  p.fabric.bufferCredits = flags.integer("buffer", 8);
  p.fabric.escapeReserveCredits = flags.integer("reserve", 4);
  p.sourceMultipathPlanes = flags.integer("multipath", 0);
  if (p.sourceMultipathPlanes > 0) {
    p.fabric.numOptions = 1;
    p.fabric.lmc = flags.integer("lmc", 2);
  }
  p.apmPathSets = flags.integer("apmsets", 1);
  p.apmActiveSet = flags.integer("apmset", 0);

  p.warmupPackets = static_cast<std::uint64_t>(flags.integer("warmup", 2000));
  p.measurePackets =
      static_cast<std::uint64_t>(flags.integer("measure", 15000));

  p.berPerBit = flags.real("ber", 0.0);
  p.creditLossRate = flags.real("creditloss", 0.0);
  p.creditResyncPeriodNs =
      static_cast<SimTime>(flags.integer("resync_us", 100)) * 1'000;
  p.transientFaultSeed = static_cast<std::uint64_t>(
      flags.integer("fseed", static_cast<int>(p.transientFaultSeed)));
  p.reliableTransport =
      flags.boolean("retransport", p.berPerBit > 0 || p.creditLossRate > 0);
  p.invariantPeriodNs =
      static_cast<SimTime>(flags.integer("wdperiod_us", 250)) * 1'000;
  p.invariantPolicy = parsePolicy(flags.str("wdpolicy", "record"));

  const bool kneeSearch = flags.boolean("knee", false);
  for (const auto& k : flags.unknownKeys()) {
    std::fprintf(stderr, "warning: unrecognized flag '%s'\n", k.c_str());
  }

  const Topology topo = buildTopology(p);
  std::printf("topology : %d switches, %d nodes, %d inter-switch links\n",
              topo.numSwitches(), topo.numNodes(), topo.numLinks());

  if (kneeSearch) {
    const PeakThroughput peak = measurePeakThroughput(topo, p);
    std::printf("\nknee throughput search (%zu points):\n", peak.curve.size());
    std::printf("  %-12s %-12s %-12s %s\n", "offered", "accepted", "latency",
                "state");
    for (const auto& cp : peak.curve) {
      std::printf("  %-12.4f %-12.4f %-12.0f %s\n",
                  cp.offeredBytesPerNsPerSwitch,
                  cp.acceptedBytesPerNsPerSwitch, cp.avgLatencyNs,
                  cp.saturated ? "saturated" : "stable");
    }
    std::printf("\nknee: %.4f bytes/ns/switch (offered %.4f)\n",
                peak.peakAccepted, peak.peakOffered);
    return 0;
  }

  const SimResults r = runSimulationOn(topo, p);
  std::printf("\nlatency  : avg %.0f ns  (p50 %.0f, p95 %.0f, p99 %.0f, "
              "max %.0f)\n",
              r.avgLatencyNs, r.p50LatencyNs, r.p95LatencyNs, r.p99LatencyNs,
              r.maxLatencyNs);
  if (r.avgLatencyAdaptiveNs > 0 || r.avgLatencyDeterministicNs > 0) {
    std::printf("           adaptive %.0f ns, deterministic %.0f ns\n",
                r.avgLatencyAdaptiveNs, r.avgLatencyDeterministicNs);
  }
  std::printf("traffic  : accepted %.4f bytes/ns/switch",
              r.acceptedBytesPerNsPerSwitch);
  if (!p.saturation) {
    std::printf("  (offered %.4f)", r.offeredBytesPerNsPerSwitch);
  }
  std::printf("\nvolumes  : generated %llu, delivered %llu, dropped %llu "
              "(measured %llu)\n",
              static_cast<unsigned long long>(r.generated),
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.dropped),
              static_cast<unsigned long long>(r.measured));
  std::printf("paths    : %.2f hops avg; forwards %.1f%% adaptive / %.1f%% "
              "escape\n",
              r.avgHops, 100 * r.adaptiveForwardFraction,
              100 * r.escapeForwardFraction);
  std::printf("links    : utilization mean %.1f%%, max %.1f%%\n",
              100 * r.meanLinkUtilization, 100 * r.maxLinkUtilization);
  std::printf("health   : %s%s%s, %llu in-order violations\n",
              r.measurementComplete ? "complete" : "INCOMPLETE",
              r.deadlockSuspected ? ", DEADLOCK SUSPECTED" : "",
              r.livePacketLimitHit ? ", live-packet cap" : "",
              static_cast<unsigned long long>(r.inOrderViolations));
  if (r.faultCampaignRan) {
    const auto& rs = r.resilience;
    std::printf("faults   : %llu corrupted (%llu CRC-dropped, %llu silent), "
                "%llu credits leaked / %llu resynced, %llu retransmits\n",
                static_cast<unsigned long long>(rs.packetsCorrupted),
                static_cast<unsigned long long>(rs.crcDrops),
                static_cast<unsigned long long>(rs.silentCorruptions),
                static_cast<unsigned long long>(rs.creditsLeaked),
                static_cast<unsigned long long>(rs.creditsResynced),
                static_cast<unsigned long long>(rs.retransmitsSent));
  }
  if (r.invariants.checksRun > 0) {
    std::printf("watchdog : %llu checks, %llu violations "
                "(%llu deadlock, %llu livelock), %llu congestion stalls%s\n",
                static_cast<unsigned long long>(r.invariants.checksRun),
                static_cast<unsigned long long>(r.invariants.violations()),
                static_cast<unsigned long long>(r.invariants.deadlocksDetected),
                static_cast<unsigned long long>(r.invariants.livelocksDetected),
                static_cast<unsigned long long>(r.invariants.congestionStalls),
                r.invariants.aborted ? ", ABORTED" : "");
    if (!r.invariants.firstViolation.empty()) {
      std::printf("           first: %s\n", r.invariants.firstViolation.c_str());
    }
  }
  std::printf("sim time : %lld ns\n",
              static_cast<long long>(r.simEndTimeNs));
  return r.deadlockSuspected || r.inOrderViolations > 0 ||
                 r.invariants.violations() > 0
             ? 1
             : 0;
}
