//
// Quickstart: build a random irregular IBA subnet, turn fully adaptive
// routing on and off, and compare latency and throughput.
//
// Usage: example_quickstart [switches=8] [links=4] [load=0.08] [seed=1]
//
#include <cstdio>

#include "api/simulation.hpp"
#include "api/sweep.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  const Flags flags(argc, argv);

  SimParams p;
  p.numSwitches = flags.integer("switches", 8);
  p.linksPerSwitch = flags.integer("links", 4);
  p.topoSeed = static_cast<std::uint64_t>(flags.integer("seed", 1));
  p.loadBytesPerNsPerNode = flags.real("load", 0.08);
  p.packetBytes = flags.integer("bytes", 32);
  p.warmupPackets = 2000;
  p.measurePackets = 20000;

  const Topology topo = buildTopology(p);
  std::printf("Subnet: %d switches, %d nodes, %d inter-switch links\n",
              topo.numSwitches(), topo.numNodes(), topo.numLinks());

  // Deterministic (stock IBA): every packet follows its up*/down* path.
  SimParams det = p;
  det.adaptiveFraction = 0.0;
  const SimResults rd = runSimulationOn(topo, det);

  // Fully adaptive: every packet may use any minimal port, escape fallback.
  SimParams fa = p;
  fa.adaptiveFraction = 1.0;
  const SimResults ra = runSimulationOn(topo, fa);

  std::printf("\nAt offered load %.3f bytes/ns/switch (%d-byte packets):\n",
              p.loadBytesPerNsPerNode * topo.nodesPerSwitch(), p.packetBytes);
  std::printf("  deterministic : %s\n", rd.summary().c_str());
  std::printf("  fully adaptive: %s\n", ra.summary().c_str());

  // Peak throughput (load ramp) comparison on the same topology.
  SimParams sat = p;
  sat.warmupPackets = 2000;
  sat.measurePackets = 12000;
  const double td = [&] {
    SimParams q = sat;
    q.adaptiveFraction = 0.0;
    return measurePeakThroughput(topo, q).peakAccepted;
  }();
  const double ta = [&] {
    SimParams q = sat;
    q.adaptiveFraction = 1.0;
    return measurePeakThroughput(topo, q).peakAccepted;
  }();
  std::printf("\nPeak throughput (bytes/ns/switch):\n");
  std::printf("  deterministic : %.4f\n", td);
  std::printf("  fully adaptive: %.4f\n", ta);
  if (td > 0) std::printf("  improvement factor: %.2fx\n", ta / td);
  return 0;
}
