//
// Topology & routing explorer: generate an irregular subnet, run the subnet
// manager, and inspect what the paper's mechanism actually programs — the
// up*/down* spanning tree, a sample of interleaved forwarding-table blocks,
// and the routing-option census (Table 2 style) for this one fabric.
//
// Usage: example_topology_explorer [switches=8] [links=4] [seed=1]
//        [options=2]
//
#include <cstdio>

#include "analysis/option_census.hpp"
#include "fabric/fabric.hpp"
#include "routing/minimal.hpp"
#include "routing/updown.hpp"
#include "subnet/subnet_manager.hpp"
#include "topology/generators.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  const Flags flags(argc, argv);

  Rng rng(static_cast<std::uint64_t>(flags.integer("seed", 1)));
  IrregularSpec spec;
  spec.numSwitches = flags.integer("switches", 8);
  spec.linksPerSwitch = flags.integer("links", 4);
  const Topology topo = makeIrregular(spec, rng);
  std::printf("%s\n", topo.describe().c_str());

  FabricParams fp;
  fp.numOptions = flags.integer("options", 2);
  fp.lmc = fp.numOptions > 2 ? 2 : 1;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  const auto report = sm.configure();
  std::printf("Subnet manager: root=sw%d, %d switches programmed, %zu LFT "
              "entries, %d LIDs/port (LMC=%d)\n\n",
              report.root, report.switchesProgrammed,
              report.lftEntriesWritten, report.lidsPerNode, fp.lmc);

  const UpDownRouting updown(topo);
  std::printf("up*/down* levels (root=sw%d):\n", updown.root());
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    std::printf("  sw%-3d level %d\n", sw, updown.level(sw));
  }

  // Dump the forwarding-table block of one destination at one switch.
  const LidMapper& lids = fabric.lids();
  const NodeId sampleDest = topo.numNodes() - 1;
  const SwitchId atSwitch = 0;
  std::printf("\nForwarding-table block at sw%d for node %d "
              "(base LID %u, %d banks):\n",
              atSwitch, sampleDest, lids.baseLid(sampleDest), fp.numOptions);
  for (int k = 0; k < lids.lidsPerNode(); ++k) {
    const Lid lid = lids.lidForOption(sampleDest, k);
    std::printf("  LID %4u -> port %d%s\n", lid,
                fabric.lftEntry(atSwitch, lid),
                k == 0 ? "   (escape / deterministic)"
                       : (k < fp.numOptions ? "   (adaptive option)"
                                            : "   (spare, escape fallback)"));
  }

  const MinimalAdaptiveRouting minimal(topo);
  const RouteSet routes(topo, updown, minimal);
  std::printf("\nRouting-option census (this topology):\n");
  for (int mr : {2, 3, 4}) {
    const OptionCensus c = routingOptionCensus(topo, routes, mr);
    std::printf("  MR=%d: 1 opt %.1f%%, 2 opts %.1f%%, 3 opts %.1f%%, "
                "4 opts %.1f%% (avg %.2f)\n",
                mr, c.pct[1], c.pct[2], c.pct[3], c.pct[4], c.avgOptions);
  }
  return 0;
}
