//
// Hot-spot study: one node receives a disproportionate share of traffic
// (failed-over storage target, parameter server, ...). The paper shows
// adaptive routing helps less as the hot-spot share grows, because the
// congestion tree around the hot node spreads through the whole fabric.
//
// Usage: example_hotspot_analysis [switches=16] [seed=1]
//
#include <cstdio>

#include "api/simulation.hpp"
#include "api/sweep.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  const Flags flags(argc, argv);

  SimParams p;
  p.numSwitches = flags.integer("switches", 16);
  p.topoSeed = static_cast<std::uint64_t>(flags.integer("seed", 1));
  p.warmupPackets = 1500;
  p.measurePackets = 8000;
  const Topology topo = buildTopology(p);

  std::printf("Hot-spot analysis on a %d-switch / %d-host fabric\n\n",
              topo.numSwitches(), topo.numNodes());
  std::printf("%-14s %16s %16s %8s\n", "hot-spot share", "det thr (B/ns/sw)",
              "FA thr (B/ns/sw)", "factor");

  RampOptions ramp;
  ramp.startLoadPerNode = 0.002;
  ramp.growth = 1.4;

  for (double share : {0.0, 0.05, 0.10, 0.20}) {
    SimParams q = p;
    if (share > 0.0) {
      q.pattern = TrafficPattern::kHotspot;
      q.hotspotFraction = share;
      q.hotspotNode = 0;  // fixed so both modes stress the same node
    }
    SimParams det = q;
    det.adaptiveFraction = 0.0;
    SimParams fa = q;
    fa.adaptiveFraction = 1.0;
    const double td = measurePeakThroughput(topo, det, ramp).peakAccepted;
    const double ta = measurePeakThroughput(topo, fa, ramp).peakAccepted;
    std::printf("%-14s %16.4f %16.4f %8.2f\n",
                share == 0.0 ? "none (uniform)"
                             : (std::to_string(static_cast<int>(share * 100)) +
                                "%")
                                   .c_str(),
                td, ta, td > 0 ? ta / td : 0.0);
  }

  std::printf("\nExpected shape (paper table 1): the improvement factor "
              "shrinks as the hot-spot\nshare grows — congestion "
              "concentrates on the hot node's link, which no routing\n"
              "freedom can widen.\n");
  return 0;
}
